//! Conventional GPU software coherence (the paper's GPU-D and GPU-H).
//!
//! The protocol (paper §3) has no writer-initiated invalidations, no
//! ownership, and no directory:
//!
//! * **Loads** hit on valid words; misses fetch whole 64 B lines from the
//!   shared L2 (the home bank, `line % banks`).
//! * **Stores** are buffered and coalesced in the store buffer and written
//!   through to the L2 — at a release, or early when the buffer
//!   overflows.
//! * **Acquires** flash-invalidate the entire L1.
//! * **Releases** drain the store buffer and wait until every
//!   writethrough has reached the L2 (its ack returned).
//! * **Global synchronization** executes remotely at the L2 bank
//!   ([`MsgKind::AtomicReq`]); under HRF, *locally scoped*
//!   synchronization executes at the L1 on the line's local copy, and
//!   locally scoped acquires/releases skip the invalidate/flush
//!   ([`GpuL1`] receives `local = true` and does nothing).
//!
//! GPU-D and GPU-H share this implementation: the consistency model only
//! changes which operations the core model marks `local` (never, for
//! DRF).

use crate::action::{Action, ActionVec, Issue};
use gsim_lens::LensHandle;
use gsim_mem::{
    CacheArray, CacheGeometry, Dram, DramConfig, InsertOutcome, MemoryImage, MshrFile, StoreBuffer,
    WordState,
};
use gsim_prof::ProfHandle;
use gsim_trace::{FlushReason, Level, TraceEvent, TraceHandle, WState};
use gsim_types::{
    AtomicOp, Component, Counts, Cycle, FxHashMap, LineAddr, Msg, MsgKind, NodeId, ReqId, Scope,
    SyncOrd, Value, WordAddr, WordMask, WORDS_PER_LINE,
};
use std::collections::VecDeque;

/// What a thread block is waiting on when its line fill returns.
#[derive(Clone, Copy, Debug)]
enum Waiter {
    /// A demand load of one word.
    Load { req: ReqId, word: WordAddr },
    /// A locally scoped atomic that missed and needs the line first.
    LocalAtomic {
        req: ReqId,
        word: WordAddr,
        op: AtomicOp,
        operands: [Value; 2],
    },
}

/// Sizing and placement parameters shared by both L1 protocol families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Config {
    /// This L1's mesh node.
    pub node: NodeId,
    /// Cache geometry (paper Table 3: 32 KB, 8-way).
    pub geometry: CacheGeometry,
    /// Store-buffer capacity in line entries (paper Table 3: 256).
    pub sb_entries: usize,
    /// Maximum outstanding miss lines.
    pub mshr_entries: usize,
    /// Number of L2 banks (= mesh nodes; the home bank of line `l` is
    /// node `l % banks`).
    pub banks: u8,
}

impl L1Config {
    /// The paper's Table 3 parameters for the L1 at `node`.
    pub fn micro15(node: NodeId) -> Self {
        L1Config {
            node,
            geometry: CacheGeometry::l1(),
            sb_entries: 256,
            mshr_entries: 32,
            banks: 16,
        }
    }

    /// The home L2 bank of a line.
    #[inline]
    pub fn home(&self, line: LineAddr) -> NodeId {
        NodeId((line.0 % self.banks as u64) as u8)
    }
}

/// The per-CU L1 controller of conventional GPU coherence.
///
/// See the [module documentation](self) for the protocol. The controller
/// is a pure state machine: operations and message deliveries return
/// [`Action`]s for the engine to perform.
#[derive(Debug)]
pub struct GpuL1 {
    config: L1Config,
    cache: CacheArray<()>,
    sb: StoreBuffer,
    mshr: MshrFile<Waiter, ()>,
    /// Writethroughs in flight (awaiting [`MsgKind::WtAck`]).
    pending_wt: u64,
    /// Per-line words with a writethrough in flight, and how many acks
    /// are owed. A fill must not install these words: its data may
    /// predate the writethrough at the L2, and the store-buffer entry
    /// that would have shadowed it is already gone.
    wt_inflight: FxHashMap<LineAddr, (u32, WordMask)>,
    /// Bumped by every global acquire. Fills for requests issued in an
    /// older epoch deliver data to their (pre-acquire) waiters but do
    /// not install it — installing would let post-acquire loads read
    /// pre-acquire line contents (stale under DRF).
    epoch: u64,
    /// The epoch each outstanding miss line was requested in.
    entry_epoch: FxHashMap<LineAddr, u64>,
    /// Releases blocked until `pending_wt` reaches zero.
    pending_releases: Vec<ReqId>,
    /// Globally scoped atomics outstanding at the L2, per word, in issue
    /// order (responses on one src/dst pair arrive in order).
    pending_atomics: FxHashMap<WordAddr, VecDeque<ReqId>>,
    counts: Counts,
    trace: TraceHandle,
    prof: ProfHandle,
    lens: LensHandle,
    /// Whether an `SbFlushBegin` trace event is awaiting its matching
    /// end (emitted when `pending_wt` returns to zero).
    sb_draining: bool,
}

impl GpuL1 {
    /// Creates the L1 controller for `config.node`.
    pub fn new(config: L1Config) -> Self {
        GpuL1 {
            cache: CacheArray::new(config.geometry),
            sb: StoreBuffer::new(config.sb_entries),
            mshr: MshrFile::new(config.mshr_entries),
            pending_wt: 0,
            wt_inflight: FxHashMap::default(),
            epoch: 0,
            entry_epoch: FxHashMap::default(),
            pending_releases: Vec::new(),
            pending_atomics: FxHashMap::default(),
            counts: Counts::default(),
            trace: TraceHandle::disabled(),
            prof: ProfHandle::disabled(),
            lens: LensHandle::disabled(),
            sb_draining: false,
            config,
        }
    }

    /// Installs a trace handle; protocol, cache, store-buffer, and MSHR
    /// events flow through it from then on.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.share();
    }

    /// Installs a profiler handle; acquire invalidations feed the
    /// hot-line sketch from then on. Observation-only.
    pub fn set_prof(&mut self, prof: &ProfHandle) {
        self.prof = prof.share();
    }

    /// Installs a lens handle; acquire sweeps, fills, and the demand
    /// stream feed the coherence-lifecycle collector from then on.
    /// Observation-only.
    pub fn set_lens(&mut self, lens: &LensHandle) {
        self.lens = lens.share();
    }

    /// Store-buffer entries currently held (profiler occupancy gauge).
    pub fn sb_occupancy(&self) -> usize {
        self.sb.len()
    }

    /// Outstanding MSHR lines (profiler occupancy gauge).
    pub fn mshr_outstanding(&self) -> usize {
        self.mshr.outstanding()
    }

    /// Emits the `SbFlushBegin` trace event and arms the matching end
    /// (fired when `pending_wt` drains back to zero).
    fn begin_sb_drain(&mut self, reason: FlushReason, pending: u32) {
        if !self.sb_draining {
            self.sb_draining = true;
            let node = self.config.node;
            self.trace.emit(|| TraceEvent::SbFlushBegin {
                node,
                reason,
                pending,
            });
        }
    }

    /// Event counters accumulated so far.
    pub fn counts(&self) -> &Counts {
        &self.counts
    }

    /// The mesh node this L1 lives on.
    pub fn node(&self) -> NodeId {
        self.config.node
    }

    /// Whether any writethrough, fill, or atomic is still in flight.
    pub fn quiesced(&self) -> bool {
        self.sb.is_empty()
            && self.pending_wt == 0
            && self.wt_inflight.is_empty()
            && self.entry_epoch.is_empty()
            && self.pending_releases.is_empty()
            && self.pending_atomics.values().all(|q| q.is_empty())
            && self.mshr.outstanding() == 0
    }

    /// Readable words left in the cache right after a global acquire —
    /// must be zero: the flash invalidate clears every Valid word, no
    /// word is ever Owned here, and dirty data lives only in the store
    /// buffer (which legally survives the acquire).
    pub fn post_acquire_residue(&self) -> u64 {
        let mut words = 0u64;
        for l in self.cache.iter() {
            words += u64::from(l.readable_mask().count());
        }
        words
    }

    /// Words whose valid and owned masks overlap, across all lines.
    /// Structurally impossible with the two-bitmap line representation;
    /// audited anyway so a future representation change cannot silently
    /// break the three-state model.
    pub fn state_mask_overlaps(&self) -> u64 {
        let mut words = 0u64;
        for l in self.cache.iter() {
            words += u64::from((l.mask_in(WordState::Valid) & l.mask_in(WordState::Owned)).count());
        }
        words
    }

    /// Store-buffer entries currently pending (line, dirty mask).
    pub fn sb_entries(&self) -> Vec<(LineAddr, WordMask)> {
        self.sb.pending_entries()
    }

    /// Names every resource still allocated after the run drained, each
    /// paired with the trace event that allocated it. Empty iff
    /// [`quiesced`](Self::quiesced) and the store buffer is empty.
    pub fn quiesce_leaks(&self) -> Vec<String> {
        let n = self.config.node;
        let mut leaks = Vec::new();
        for (line, mask) in self.mshr.outstanding_lines() {
            leaks.push(format!(
                "{n}: MSHR entry for line {} ({} word(s) pending; alloc event: mshr-alloc)",
                line.0,
                mask.count()
            ));
        }
        for (line, mask) in self.sb.pending_entries() {
            leaks.push(format!(
                "{n}: store-buffer entry for line {} ({} dirty word(s); alloc event: sb-flush)",
                line.0,
                mask.count()
            ));
        }
        if self.pending_wt > 0 {
            leaks.push(format!(
                "{n}: {} writethrough ack(s) outstanding (alloc event: sb-flush)",
                self.pending_wt
            ));
        }
        let mut wt: Vec<_> = self.wt_inflight.iter().collect();
        wt.sort_by_key(|(&l, _)| l);
        for (&line, &(acks, _)) in wt {
            leaks.push(format!(
                "{n}: {acks} writethrough(s) in flight for line {} (alloc event: msg-send)",
                line.0
            ));
        }
        let mut ee: Vec<_> = self.entry_epoch.keys().copied().collect();
        ee.sort();
        for line in ee {
            leaks.push(format!(
                "{n}: miss-epoch record for line {} (alloc event: mshr-alloc)",
                line.0
            ));
        }
        for req in &self.pending_releases {
            leaks.push(format!(
                "{n}: release {req:?} never completed (alloc event: release)"
            ));
        }
        let mut at: Vec<_> = self
            .pending_atomics
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .collect();
        at.sort_by_key(|(&w, _)| w);
        for (&word, q) in at {
            leaks.push(format!(
                "{n}: {} atomic(s) outstanding on word {} (alloc event: atomic)",
                q.len(),
                word.0
            ));
        }
        leaks
    }

    /// Test-only: plants an MSHR entry that will never complete, so the
    /// quiesce audit's leak naming can be exercised end to end.
    #[doc(hidden)]
    pub fn debug_leak_mshr_entry(&mut self, line: LineAddr) {
        self.mshr.request(
            line,
            WordMask::single(0),
            Waiter::Load {
                req: ReqId(u64::MAX),
                word: line.word(0),
            },
        );
    }

    /// Test-only: plants a store-buffer word that no release will drain
    /// (bypassing the overflow path), for the leak-naming tests.
    #[doc(hidden)]
    pub fn debug_leak_sb_word(&mut self, word: WordAddr, value: Value) {
        let _ = self.sb.write(word, value);
    }

    fn msg_to_home(&self, line: LineAddr, kind: MsgKind) -> Msg {
        Msg {
            src: self.config.node,
            dst: self.config.home(line),
            dst_comp: Component::L2,
            kind,
        }
    }

    /// Sends one writethrough, recording its in-flight words so racing
    /// fills do not resurrect stale values.
    fn send_writethrough(&mut self, e: gsim_mem::SbEntry, actions: &mut ActionVec) {
        self.pending_wt += 1;
        let slot = self.wt_inflight.entry(e.line).or_default();
        slot.0 += 1;
        slot.1 |= e.mask;
        actions.push(Action::send(self.msg_to_home(
            e.line,
            MsgKind::WriteThrough {
                line: e.line,
                mask: e.mask,
                data: e.data,
            },
        )));
    }

    /// Buffers a store, emitting the overflow writethrough if the oldest
    /// entry is displaced.
    fn buffer_store(&mut self, word: WordAddr, value: Value, actions: &mut ActionVec) {
        self.lens.store(self.config.node.index(), word);
        if let gsim_mem::StoreOutcome::Overflow(e) = self.sb.write(word, value) {
            self.counts.sb_overflow_flushes += 1;
            let pending = e.mask.count();
            self.begin_sb_drain(FlushReason::Overflow, pending);
            self.send_writethrough(e, actions);
        }
    }

    /// The freshest locally visible value of `word`, if any: the store
    /// buffer shadows the cache.
    fn local_value(&mut self, word: WordAddr) -> Option<Value> {
        if let Some(v) = self.sb.lookup(word) {
            return Some(v);
        }
        let line = self.cache.lookup(word.line())?;
        let i = word.index_in_line();
        line.word(i).readable().then(|| line.data[i])
    }

    /// A demand load of `word`.
    pub fn load(&mut self, word: WordAddr, req: ReqId) -> (Issue, ActionVec) {
        if let Some(v) = self.local_value(word) {
            self.counts.l1_accesses += 1;
            self.counts.l1_load_hits += 1;
            self.lens
                .access(self.config.node.index(), word.line(), true);
            return (Issue::Hit(v), ActionVec::new());
        }
        let line = word.line();
        if !self.mshr.has_room_for(line) || self.entry_is_stale(line) {
            return (Issue::Retry, ActionVec::new());
        }
        self.counts.l1_accesses += 1;
        self.counts.l1_load_misses += 1;
        self.lens.access(self.config.node.index(), line, false);
        self.lens.load_miss(self.config.node.index(), word, req);
        self.entry_epoch.entry(line).or_insert(self.epoch);
        let was_pending = self.mshr.is_pending(line);
        let to_send = self
            .mshr
            .request(line, WordMask::full(), Waiter::Load { req, word });
        if !was_pending {
            self.emit_mshr_alloc(line);
        }
        let mut actions = ActionVec::new();
        if !to_send.is_empty() {
            actions.push(Action::send(self.msg_to_home(
                line,
                MsgKind::ReadReq {
                    line,
                    mask: WordMask::full(),
                    requester: self.config.node,
                },
            )));
        }
        (Issue::Pending, actions)
    }

    /// A data store: write-update the local copy and buffer the
    /// writethrough. Never blocks (overflow evicts the oldest entry).
    pub fn store(&mut self, word: WordAddr, value: Value) -> (Issue, ActionVec) {
        self.counts.l1_accesses += 1;
        let i = word.index_in_line();
        if let Some(line) = self.cache.lookup(word.line()) {
            line.data[i] = value;
            line.set_word(i, WordState::Valid);
        }
        let mut actions = ActionVec::new();
        self.buffer_store(word, value, &mut actions);
        (Issue::Hit(0), actions)
    }

    /// A synchronization access. Globally scoped atomics execute remotely
    /// at the line's home L2 bank; locally scoped atomics (`local`,
    /// GPU-H only) execute here on the L1 copy.
    pub fn atomic(
        &mut self,
        word: WordAddr,
        op: AtomicOp,
        operands: [Value; 2],
        ord: SyncOrd,
        local: bool,
        req: ReqId,
    ) -> (Issue, ActionVec) {
        if !local {
            let msg = self.msg_to_home(
                word.line(),
                MsgKind::AtomicReq {
                    word,
                    op,
                    operands,
                    ord,
                    scope: Scope::Global,
                    requester: self.config.node,
                },
            );
            self.pending_atomics.entry(word).or_default().push_back(req);
            return (Issue::Pending, ActionVec::of(Action::send(msg)));
        }
        if let Some(current) = self.local_value(word) {
            self.counts.l1_accesses += 1;
            self.counts.l1_atomics += 1;
            self.counts.l1_atomic_hits += 1;
            let (new, old) = op.apply(current, operands);
            let mut actions = ActionVec::new();
            self.apply_local_write(word, new, op, &mut actions);
            return (Issue::Hit(old), actions);
        }
        let line = word.line();
        if !self.mshr.has_room_for(line) || self.entry_is_stale(line) {
            return (Issue::Retry, ActionVec::new());
        }
        self.counts.l1_accesses += 1;
        self.counts.l1_atomics += 1;
        self.entry_epoch.entry(line).or_insert(self.epoch);
        let was_pending = self.mshr.is_pending(line);
        let to_send = self.mshr.request(
            line,
            WordMask::full(),
            Waiter::LocalAtomic {
                req,
                word,
                op,
                operands,
            },
        );
        if !was_pending {
            self.emit_mshr_alloc(line);
        }
        let mut actions = ActionVec::new();
        if !to_send.is_empty() {
            actions.push(Action::send(self.msg_to_home(
                line,
                MsgKind::ReadReq {
                    line,
                    mask: WordMask::full(),
                    requester: self.config.node,
                },
            )));
        }
        (Issue::Pending, actions)
    }

    /// Applies the write half of a locally performed atomic: update the
    /// cache copy and buffer the (eventual) writethrough.
    fn apply_local_write(
        &mut self,
        word: WordAddr,
        new: Value,
        op: AtomicOp,
        actions: &mut ActionVec,
    ) {
        if !op.writes() {
            return;
        }
        let i = word.index_in_line();
        if let Some(line) = self.cache.lookup(word.line()) {
            line.data[i] = new;
            line.set_word(i, WordState::Valid);
        }
        self.buffer_store(word, new, actions);
    }

    /// An acquire: flash-invalidate the whole cache (global scope), or
    /// nothing (local scope, GPU-H). Dirty data survives in the store
    /// buffer and keeps shadowing the cache.
    pub fn acquire(&mut self, local: bool) {
        if local {
            return;
        }
        self.epoch += 1; // in-flight fills must not install post-acquire
        self.counts.flash_invalidations += 1;
        let mut invalidated: u64 = 0;
        let prof = &self.prof;
        let lens = &self.lens;
        let prof_node = self.config.node.index();
        lens.flash(prof_node);
        self.cache.for_each_line_mut(|l| {
            let v = l.invalidate_valid(WordMask::empty());
            invalidated += u64::from(v.count());
            prof.line_invalidated(prof_node, l.tag, u64::from(v.count()));
            lens.invalidated(prof_node, l.tag, v);
        });
        self.counts.words_invalidated += invalidated;
        let node = self.config.node;
        self.trace.emit(|| TraceEvent::SyncAcquire {
            node,
            scope: Scope::Global,
            invalidated,
            flash: true,
        });
    }

    /// A release: flush the store buffer and wait for every writethrough
    /// (including earlier overflow flushes) to reach the L2. Locally
    /// scoped releases (GPU-H) complete immediately.
    pub fn release(&mut self, local: bool, req: ReqId) -> (Issue, ActionVec) {
        if local {
            return (Issue::Hit(0), ActionVec::new());
        }
        let node = self.config.node;
        self.trace.emit(|| TraceEvent::SyncRelease {
            node,
            scope: Scope::Global,
        });
        let pending = self.sb.len() as u32;
        let mut actions = ActionVec::new();
        while let Some(e) = self.sb.pop_oldest() {
            self.counts.sb_release_flushes += 1;
            self.send_writethrough(e, &mut actions);
        }
        if self.pending_wt == 0 {
            (Issue::Hit(0), actions)
        } else {
            self.begin_sb_drain(FlushReason::Release, pending);
            self.pending_releases.push(req);
            (Issue::Pending, actions)
        }
    }

    /// Delivers a network message to this L1.
    ///
    /// # Panics
    ///
    /// Panics on message kinds conventional GPU coherence never receives
    /// (registration grants, forwards, recalls) — a protocol bug.
    pub fn handle(&mut self, msg: &Msg) -> ActionVec {
        match msg.kind {
            MsgKind::ReadResp { line, mask, data } => self.fill(line, mask, &data),
            MsgKind::WtAck { line } => {
                self.pending_wt -= 1;
                if let Some(slot) = self.wt_inflight.get_mut(&line) {
                    slot.0 -= 1;
                    if slot.0 == 0 {
                        self.wt_inflight.remove(&line);
                    }
                }
                if self.pending_wt == 0 {
                    if self.sb_draining {
                        self.sb_draining = false;
                        let node = self.config.node;
                        self.trace.emit(|| TraceEvent::SbFlushEnd { node });
                    }
                    self.pending_releases
                        .drain(..)
                        .map(|req| Action::complete(req, 0))
                        .collect()
                } else {
                    ActionVec::new()
                }
            }
            MsgKind::AtomicResp { word, old } => {
                let req = self
                    .pending_atomics
                    .get_mut(&word)
                    .and_then(|q| q.pop_front())
                    .expect("atomic response without a pending request");
                ActionVec::of(Action::complete(req, old))
            }
            ref k => panic!("GPU L1 received unexpected message {k:?}"),
        }
    }

    /// Emits the `MshrAlloc` trace event for a freshly allocated entry.
    fn emit_mshr_alloc(&mut self, line: LineAddr) {
        let (node, outstanding) = (self.config.node, self.mshr.outstanding() as u32);
        self.trace.emit(|| TraceEvent::MshrAlloc {
            node,
            line,
            outstanding,
        });
    }

    /// Whether the outstanding miss on `line` predates the last acquire.
    fn entry_is_stale(&self, line: LineAddr) -> bool {
        self.entry_epoch.get(&line).is_some_and(|&e| e < self.epoch)
    }

    /// Applies a line fill and services the waiters.
    ///
    /// Two squash rules keep fills from resurrecting stale data:
    /// words with a writethrough in flight are not installed (the fill
    /// may predate the writethrough at the L2), and fills whose request
    /// predates the last acquire install nothing at all — their waiters
    /// are pre-acquire accesses and are served straight from the fill.
    fn fill(
        &mut self,
        line: LineAddr,
        mask: WordMask,
        data: &[Value; WORDS_PER_LINE],
    ) -> ActionVec {
        let stale = self.entry_is_stale(line);
        if !stale {
            let skip = self.wt_inflight.get(&line).map(|s| s.1).unwrap_or_default();
            // GPU victims are clean: silent drop.
            if let InsertOutcome::Evicted(victim) = self.cache.insert(line) {
                let node = self.config.node;
                self.trace.emit(|| TraceEvent::Eviction {
                    node,
                    level: Level::L1,
                    line: victim.tag,
                    owned_words: 0,
                });
            }
            let installed = (mask & !skip).count();
            if installed > 0 {
                let node = self.config.node;
                self.trace.emit(|| TraceEvent::StateChange {
                    node,
                    level: Level::L1,
                    line,
                    words: installed,
                    from: WState::Invalid,
                    to: WState::Valid,
                });
            }
            self.lens
                .filled(self.config.node.index(), line, mask & !skip, false);
            let entry = self.cache.lookup(line).expect("just inserted");
            entry.fill(mask & !skip, data, WordState::Valid);
            // Local pending stores are newer than the L2's copy: re-apply
            // them so the cached words never go stale once the buffer
            // drains.
            for i in mask.iter() {
                if let Some(v) = self.sb.lookup(line.word(i)) {
                    entry.data[i] = v;
                    entry.set_word(i, WordState::Valid);
                }
            }
        }
        let (done, _) = self.mshr.complete(line, mask);
        if !self.mshr.is_pending(line) {
            self.entry_epoch.remove(&line);
            let (node, waiters) = (self.config.node, done.len() as u32);
            self.trace.emit(|| TraceEvent::MshrRetire {
                node,
                line,
                waiters,
            });
        }
        let mut actions = ActionVec::new();
        for w in done {
            match w {
                Waiter::Load { req, word } => {
                    let v = self.local_value(word).unwrap_or(data[word.index_in_line()]);
                    actions.push(Action::complete(req, v));
                }
                Waiter::LocalAtomic {
                    req,
                    word,
                    op,
                    operands,
                } => {
                    let current = self.local_value(word).unwrap_or(data[word.index_in_line()]);
                    let (new, old) = op.apply(current, operands);
                    self.apply_local_write(word, new, op, &mut actions);
                    actions.push(Action::complete(req, old));
                }
            }
        }
        actions
    }
}

/// Timing and sizing of the shared L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Config {
    /// Bank access latency in cycles (tag + data array).
    pub latency: Cycle,
    /// Per-bank cache geometry (paper Table 3: 4 MB / 16 banks).
    pub bank_geometry: CacheGeometry,
    /// Number of banks (one per mesh node).
    pub banks: usize,
    /// Backing DRAM timing.
    pub dram: DramConfig,
}

impl Default for L2Config {
    fn default() -> Self {
        // `latency` is calibrated (with the mesh) so end-to-end L2 hits
        // land in Table 3's 29-61 cycle range; see gsim-core's tests.
        L2Config {
            latency: 26,
            bank_geometry: CacheGeometry::l2_bank(),
            banks: 16,
            dram: DramConfig::default(),
        }
    }
}

/// The shared L2 of conventional GPU coherence: all 16 NUCA banks plus
/// the backing DRAM and the functional memory image.
///
/// One instance serves every bank; the engine routes a message here
/// whenever `dst_comp == Component::L2`, and the bank is implied by the
/// line address (`line % banks == dst node`).
#[derive(Debug)]
pub struct GpuL2 {
    config: L2Config,
    banks: Vec<CacheArray<()>>,
    /// Per-bank in-order pipeline: the cycle each bank next accepts a
    /// request. A bank blocked on a DRAM fill delays later requests, so
    /// responses leave every bank in arrival order — the point-to-point
    /// ordering the L1 controllers rely on.
    bank_busy: Vec<Cycle>,
    memory: MemoryImage,
    dram: Dram,
    counts: Counts,
    trace: TraceHandle,
    prof: ProfHandle,
}

impl GpuL2 {
    /// Creates the shared L2 over an initial memory image.
    pub fn new(config: L2Config, memory: MemoryImage) -> Self {
        GpuL2 {
            banks: (0..config.banks)
                .map(|_| CacheArray::new(config.bank_geometry))
                .collect(),
            bank_busy: vec![0; config.banks],
            dram: Dram::new(config.dram),
            memory,
            counts: Counts::default(),
            trace: TraceHandle::disabled(),
            prof: ProfHandle::disabled(),
            config,
        }
    }

    /// Installs a trace handle; bank evictions are traced from then on.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.share();
    }

    /// Installs a profiler handle; bank operations feed the L2 hot-line
    /// sketch from then on. Observation-only.
    pub fn set_prof(&mut self, prof: &ProfHandle) {
        self.prof = prof.share();
    }

    /// Starts a bank operation on `line` at `now`: waits for the bank,
    /// fetches the line if missing, and occupies the bank until the data
    /// is available. Returns the delay (relative to `now`) after which
    /// responses go out.
    fn bank_op(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        let bank = (line.0 % self.config.banks as u64) as usize;
        let start = now.max(self.bank_busy[bank]);
        let d = self.ensure_line(start, line);
        self.bank_busy[bank] = start + d + 1;
        start + d + self.config.latency - now
    }

    /// Event counters accumulated so far.
    pub fn counts(&self) -> &Counts {
        &self.counts
    }

    /// The functional memory image (final state inspection).
    ///
    /// Note: words still buffered in L1 store buffers are not yet here;
    /// run verification only after every kernel's final release.
    pub fn memory(&self) -> &MemoryImage {
        &self.memory
    }

    /// Mutable access to the memory image (host-side initialization).
    pub fn memory_mut(&mut self) -> &mut MemoryImage {
        &mut self.memory
    }

    fn bank_node(&self, line: LineAddr) -> NodeId {
        NodeId((line.0 % self.config.banks as u64) as u8)
    }

    /// Ensures `line` is resident in its bank, returning the extra delay
    /// (0 on a bank hit, the DRAM round trip on a miss).
    fn ensure_line(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        let bank = (line.0 % self.config.banks as u64) as usize;
        if self.banks[bank].contains(line) {
            return 0;
        }
        let done = self.dram.access(now, line);
        self.counts.dram_reads += 1;
        let data = self.memory.read_line(line);
        if let InsertOutcome::Evicted(victim) = self.banks[bank].insert(line) {
            let dirty = victim.mask_in(WordState::Owned);
            let node = self.bank_node(victim.tag);
            self.trace.emit(|| TraceEvent::Eviction {
                node,
                level: Level::L2,
                line: victim.tag,
                owned_words: dirty.count(),
            });
            if !dirty.is_empty() {
                self.memory.write_line(victim.tag, dirty, &victim.data);
                self.dram.access(now, victim.tag);
                self.counts.dram_writes += 1;
            }
        }
        let l = self.banks[bank].lookup(line).expect("just inserted");
        l.fill(WordMask::full(), &data, WordState::Valid);
        done - now
    }

    /// Delivers a network message to the addressed bank.
    ///
    /// # Panics
    ///
    /// Panics on DeNovo-only message kinds (registrations, writebacks,
    /// recalls) — a protocol bug.
    pub fn handle(&mut self, now: Cycle, msg: &Msg) -> ActionVec {
        match msg.kind {
            MsgKind::ReadReq {
                line, requester, ..
            } => {
                debug_assert_eq!(msg.dst, self.bank_node(line), "misrouted L2 request");
                self.counts.l2_accesses += 1;
                self.prof.l2_access(line);
                let delay = self.bank_op(now, line);
                let bank = (line.0 % self.config.banks as u64) as usize;
                let data = self.banks[bank].peek(line).expect("resident").data;
                ActionVec::of(Action::Send {
                    msg: Msg {
                        src: msg.dst,
                        dst: requester,
                        dst_comp: Component::L1,
                        kind: MsgKind::ReadResp {
                            line,
                            mask: WordMask::full(),
                            data,
                        },
                    },
                    delay,
                })
            }
            MsgKind::WriteThrough { line, mask, data } => {
                self.counts.l2_accesses += 1;
                self.prof.l2_access(line);
                let delay = self.bank_op(now, line);
                let bank = (line.0 % self.config.banks as u64) as usize;
                let l = self.banks[bank].lookup(line).expect("resident");
                l.fill(mask, &data, WordState::Owned);
                ActionVec::of(Action::Send {
                    msg: Msg {
                        src: msg.dst,
                        dst: msg.src,
                        dst_comp: Component::L1,
                        kind: MsgKind::WtAck { line },
                    },
                    delay,
                })
            }
            MsgKind::AtomicReq {
                word,
                op,
                operands,
                requester,
                ..
            } => {
                self.counts.l2_accesses += 1;
                self.counts.l2_atomics += 1;
                let line = word.line();
                self.prof.l2_access(line);
                let delay = self.bank_op(now, line);
                let bank = (line.0 % self.config.banks as u64) as usize;
                let l = self.banks[bank].lookup(line).expect("resident");
                let i = word.index_in_line();
                let (new, old) = op.apply(l.data[i], operands);
                if op.writes() {
                    l.data[i] = new;
                    l.set_word(i, WordState::Owned);
                }
                ActionVec::of(Action::Send {
                    msg: Msg {
                        src: msg.dst,
                        dst: requester,
                        dst_comp: Component::L1,
                        kind: MsgKind::AtomicResp { word, old },
                    },
                    delay,
                })
            }
            ref k => panic!("GPU L2 received unexpected message {k:?}"),
        }
    }

    /// Flushes every dirty L2 word into the memory image (end of run, so
    /// verifiers see the complete final state).
    pub fn flush_to_memory(&mut self) {
        for bank in &mut self.banks {
            let mut writes = Vec::new();
            bank.for_each_line_mut(|l| {
                let dirty = l.mask_in(WordState::Owned);
                if !dirty.is_empty() {
                    writes.push((l.tag, dirty, l.data));
                    l.set_mask(dirty, WordState::Valid);
                }
            });
            for (tag, mask, data) in writes {
                self.memory.write_line(tag, mask, &data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> GpuL1 {
        GpuL1::new(L1Config::micro15(NodeId(0)))
    }

    fn l2_with(words: &[(u64, Value)]) -> GpuL2 {
        let mut mem = MemoryImage::new();
        for &(w, v) in words {
            mem.write_word(WordAddr(w), v);
        }
        GpuL2::new(L2Config::default(), mem)
    }

    /// Runs a full L1 -> L2 -> L1 round trip for one message.
    fn bounce(l1c: &mut GpuL1, l2c: &mut GpuL2, actions: ActionVec) -> ActionVec {
        let mut out = ActionVec::new();
        for a in actions {
            let Action::Send { msg, .. } = a else {
                out.push(a);
                continue;
            };
            assert_eq!(msg.dst_comp, Component::L2, "GPU L1s only talk to the L2");
            for r in l2c.handle(0, &msg) {
                let Action::Send { msg: m2, .. } = r else {
                    out.push(r);
                    continue;
                };
                out.extend(l1c.handle(&m2));
            }
        }
        out
    }

    #[test]
    fn load_miss_then_hit() {
        let mut l1c = l1();
        let mut l2c = l2_with(&[(3, 77)]);
        let (issue, actions) = l1c.load(WordAddr(3), ReqId(1));
        assert_eq!(issue, Issue::Pending);
        let done = bounce(&mut l1c, &mut l2c, actions);
        assert_eq!(done, vec![Action::complete(ReqId(1), 77)]);
        // Second load to any word of the line hits.
        let (issue, _) = l1c.load(WordAddr(0), ReqId(2));
        assert_eq!(issue, Issue::Hit(0));
        let (issue, _) = l1c.load(WordAddr(3), ReqId(3));
        assert_eq!(issue, Issue::Hit(77));
        assert_eq!(l1c.counts().l1_load_hits, 2);
        assert_eq!(l1c.counts().l1_load_misses, 1);
    }

    #[test]
    fn coalesced_misses_complete_together() {
        let mut l1c = l1();
        let mut l2c = l2_with(&[(0, 5), (1, 6)]);
        let (_, a1) = l1c.load(WordAddr(0), ReqId(1));
        let (issue2, a2) = l1c.load(WordAddr(1), ReqId(2));
        assert_eq!(issue2, Issue::Pending);
        assert!(a2.is_empty(), "second miss coalesces, no new request");
        let done = bounce(&mut l1c, &mut l2c, a1);
        assert_eq!(
            done,
            vec![Action::complete(ReqId(1), 5), Action::complete(ReqId(2), 6)]
        );
    }

    #[test]
    fn store_forwards_and_release_flushes() {
        let mut l1c = l1();
        let mut l2c = l2_with(&[]);
        let (issue, actions) = l1c.store(WordAddr(8), 42);
        assert_eq!(issue, Issue::Hit(0));
        assert!(actions.is_empty(), "store buffered, nothing sent yet");
        // Store-to-load forwarding.
        let (issue, _) = l1c.load(WordAddr(8), ReqId(1));
        assert_eq!(issue, Issue::Hit(42));
        // Release drains the buffer and blocks until the ack.
        let (issue, actions) = l1c.release(false, ReqId(2));
        assert_eq!(issue, Issue::Pending);
        assert_eq!(actions.len(), 1);
        let done = bounce(&mut l1c, &mut l2c, actions);
        assert_eq!(done, vec![Action::complete(ReqId(2), 0)]);
        assert_eq!(l1c.counts().sb_release_flushes, 1);
        assert_eq!(l2c.memory_after_flush(WordAddr(8)), 42);
        assert!(l1c.quiesced());
    }

    impl GpuL2 {
        fn memory_after_flush(&mut self, w: WordAddr) -> Value {
            self.flush_to_memory();
            self.memory().read_word(w)
        }
    }

    #[test]
    fn empty_release_completes_immediately() {
        let mut l1c = l1();
        let (issue, actions) = l1c.release(false, ReqId(9));
        assert_eq!(issue, Issue::Hit(0));
        assert!(actions.is_empty());
    }

    #[test]
    fn acquire_invalidates_but_store_buffer_survives() {
        let mut l1c = l1();
        let mut l2c = l2_with(&[(0, 1)]);
        let (_, a) = l1c.load(WordAddr(0), ReqId(1));
        bounce(&mut l1c, &mut l2c, a);
        l1c.store(WordAddr(1), 9);
        l1c.acquire(false);
        assert_eq!(l1c.counts().flash_invalidations, 1);
        assert_eq!(l1c.counts().words_invalidated, 16);
        // The cached word is gone...
        let (issue, a) = l1c.load(WordAddr(0), ReqId(2));
        assert_eq!(issue, Issue::Pending);
        bounce(&mut l1c, &mut l2c, a);
        // ...but the dirty word still forwards.
        let (issue, _) = l1c.load(WordAddr(1), ReqId(3));
        assert_eq!(issue, Issue::Hit(9));
        // Local acquire (GPU-H) invalidates nothing.
        l1c.acquire(true);
        assert_eq!(l1c.counts().flash_invalidations, 1);
    }

    #[test]
    fn global_atomic_executes_at_l2() {
        let mut l1c = l1();
        let mut l2c = l2_with(&[(4, 10)]);
        let (issue, actions) = l1c.atomic(
            WordAddr(4),
            AtomicOp::Add,
            [5, 0],
            SyncOrd::AcqRel,
            false,
            ReqId(1),
        );
        assert_eq!(issue, Issue::Pending);
        let done = bounce(&mut l1c, &mut l2c, actions);
        assert_eq!(done, vec![Action::complete(ReqId(1), 10)]);
        assert_eq!(l2c.counts().l2_atomics, 1);
        assert_eq!(l1c.counts().l1_atomics, 0, "performed remotely");
        // The L2 word was updated in place.
        l2c.flush_to_memory();
        assert_eq!(l2c.memory().read_word(WordAddr(4)), 15);
    }

    #[test]
    fn local_atomic_executes_at_l1() {
        let mut l1c = l1();
        let mut l2c = l2_with(&[(4, 10)]);
        // Miss: fetch the line, then perform locally.
        let (issue, actions) = l1c.atomic(
            WordAddr(4),
            AtomicOp::Add,
            [5, 0],
            SyncOrd::AcqRel,
            true,
            ReqId(1),
        );
        assert_eq!(issue, Issue::Pending);
        let done = bounce(&mut l1c, &mut l2c, actions);
        assert_eq!(done, vec![Action::complete(ReqId(1), 10)]);
        // Now a hit, entirely at the L1.
        let (issue, actions) = l1c.atomic(
            WordAddr(4),
            AtomicOp::Add,
            [1, 0],
            SyncOrd::AcqRel,
            true,
            ReqId(2),
        );
        assert_eq!(issue, Issue::Hit(15));
        assert!(actions.is_empty());
        assert_eq!(l1c.counts().l1_atomic_hits, 1);
        assert_eq!(l2c.counts().l2_atomics, 0);
        // The value reaches the L2 at the next global release.
        let (_, actions) = l1c.release(false, ReqId(3));
        bounce(&mut l1c, &mut l2c, actions);
        l2c.flush_to_memory();
        assert_eq!(l2c.memory().read_word(WordAddr(4)), 16);
    }

    #[test]
    fn same_word_atomics_complete_in_order() {
        let mut l1c = l1();
        let mut l2c = l2_with(&[(0, 0)]);
        let (_, a1) = l1c.atomic(
            WordAddr(0),
            AtomicOp::Add,
            [1, 0],
            SyncOrd::AcqRel,
            false,
            ReqId(1),
        );
        let (_, a2) = l1c.atomic(
            WordAddr(0),
            AtomicOp::Add,
            [1, 0],
            SyncOrd::AcqRel,
            false,
            ReqId(2),
        );
        let d1 = bounce(&mut l1c, &mut l2c, a1);
        let d2 = bounce(&mut l1c, &mut l2c, a2);
        assert_eq!(d1, vec![Action::complete(ReqId(1), 0)]);
        assert_eq!(d2, vec![Action::complete(ReqId(2), 1)]);
    }

    #[test]
    fn sb_overflow_writes_through_early() {
        let mut l1c = GpuL1::new(L1Config {
            sb_entries: 2,
            ..L1Config::micro15(NodeId(0))
        });
        let mut actions = Vec::new();
        for line in 0..3u64 {
            let (_, a) = l1c.store(LineAddr(line).word(0), line as Value);
            actions.extend(a);
        }
        assert_eq!(actions.len(), 1, "oldest entry written through");
        assert_eq!(l1c.counts().sb_overflow_flushes, 1);
        assert!(matches!(
            actions[0],
            Action::Send {
                msg: Msg {
                    kind: MsgKind::WriteThrough {
                        line: LineAddr(0),
                        ..
                    },
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn retry_when_mshr_full() {
        let mut l1c = GpuL1::new(L1Config {
            mshr_entries: 1,
            ..L1Config::micro15(NodeId(0))
        });
        let (i1, _) = l1c.load(WordAddr(0), ReqId(1));
        assert_eq!(i1, Issue::Pending);
        let (i2, a2) = l1c.load(LineAddr(1).word(0), ReqId(2));
        assert_eq!(i2, Issue::Retry);
        assert!(a2.is_empty());
        // Same line still coalesces even when the file is "full".
        let (i3, _) = l1c.load(WordAddr(1), ReqId(3));
        assert_eq!(i3, Issue::Pending);
    }

    #[test]
    fn l2_dram_miss_then_bank_hit() {
        let mut l2c = l2_with(&[(0, 123)]);
        let req = Msg {
            src: NodeId(2),
            dst: NodeId(0),
            dst_comp: Component::L2,
            kind: MsgKind::ReadReq {
                line: LineAddr(0),
                mask: WordMask::full(),
                requester: NodeId(2),
            },
        };
        let first = l2c.handle(0, &req);
        let Action::Send { delay: d1, msg } = first[0] else {
            panic!("expected a send");
        };
        assert!(matches!(msg.kind, MsgKind::ReadResp { .. }));
        assert_eq!(l2c.counts().dram_reads, 1);
        let second = l2c.handle(1000, &req);
        let Action::Send { delay: d2, .. } = second[0] else {
            panic!("expected a send");
        };
        assert!(d1 > d2, "bank hit is faster than the DRAM miss");
        assert_eq!(d2, L2Config::default().latency);
        assert_eq!(l2c.counts().dram_reads, 1, "no second DRAM access");
    }

    #[test]
    fn writethrough_marks_dirty_and_eviction_persists() {
        let mut l2c = l2_with(&[]);
        let wt = Msg {
            src: NodeId(1),
            dst: NodeId(0),
            dst_comp: Component::L2,
            kind: MsgKind::WriteThrough {
                line: LineAddr(0),
                mask: WordMask::single(0),
                data: [55; WORDS_PER_LINE],
            },
        };
        let acks = l2c.handle(0, &wt);
        assert!(matches!(
            acks[0],
            Action::Send {
                msg: Msg {
                    kind: MsgKind::WtAck { .. },
                    ..
                },
                ..
            }
        ));
        assert_eq!(l2c.memory().read_word(WordAddr(0)), 0, "not yet in DRAM");
        l2c.flush_to_memory();
        assert_eq!(l2c.memory().read_word(WordAddr(0)), 55);
    }
}
