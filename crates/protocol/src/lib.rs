#![warn(missing_docs)]

//! The coherence protocols of Sinclair et al., MICRO 2015.
//!
//! This crate implements both protocol families the paper studies as
//! message-driven controller state machines:
//!
//! * [`gpu`] — conventional GPU software coherence (configurations GPU-D
//!   and GPU-H): reader-initiated full-cache invalidation, buffered and
//!   coalesced writethroughs, synchronization at the shared L2 (or at the
//!   L1 for HRF local scopes).
//! * [`denovo`] — the DeNovo hybrid hardware-software protocol
//!   (configurations DeNovo-D, DeNovo-D+RO, DeNovo-H): reader-initiated
//!   *selective* invalidation, word-granularity hardware ownership
//!   (registration) tracked at the L2 registry, and DeNovoSync0
//!   synchronization with same-CU coalescing and the distributed queue
//!   for racy registrations.
//!
//! Controllers are pure state machines connected to the engine through
//! the [`action`] vocabulary, so every protocol transition is unit-tested
//! in isolation here, independent of timing.
//!
//! The qualitative side of the paper lives in three data modules:
//! [`taxonomy`] (Table 1), [`features`] (Tables 2 and 5), and
//! [`overhead`] (the §4.2 state-bit accounting).

pub mod action;
pub mod denovo;
pub mod features;
pub mod gpu;
pub mod overhead;
pub mod taxonomy;

pub use action::{Action, ActionVec, Issue};
pub use denovo::{DnL1, DnL2};
pub use gpu::{GpuL1, GpuL2, L1Config, L2Config};
