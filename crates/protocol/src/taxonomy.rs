//! The paper's Table 1: a classification of coherence protocols by who
//! initiates invalidations, how the up-to-date copy is located, and
//! whether the protocol has been combined with scoped synchronization.

use std::fmt;

/// Who removes stale copies from private caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvalidationInitiator {
    /// The writer invalidates sharers (conventional MESI-style hardware).
    Writer,
    /// Readers self-invalidate at acquires (GPU and DeNovo).
    Reader,
}

/// How a miss locates the up-to-date copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpToDateTracking {
    /// Writers register ownership (a directory or the DeNovo registry).
    Ownership,
    /// Writers keep a shared cache up to date with writethroughs.
    Writethrough,
}

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolClass {
    /// The class name used in the paper.
    pub name: &'static str,
    /// A representative protocol.
    pub example: &'static str,
    /// Who initiates invalidations.
    pub invalidation: InvalidationInitiator,
    /// How the up-to-date copy is tracked.
    pub tracking: UpToDateTracking,
    /// Whether the class can be combined with scoped synchronization.
    pub supports_scopes: bool,
}

impl fmt::Display for ProtocolClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<8} {:<12} {:<12} {}",
            self.name,
            self.example,
            match self.invalidation {
                InvalidationInitiator::Writer => "writer",
                InvalidationInitiator::Reader => "reader",
            },
            match self.tracking {
                UpToDateTracking::Ownership => "ownership",
                UpToDateTracking::Writethrough => "writethrough",
            },
            if self.supports_scopes { "yes" } else { "no" },
        )
    }
}

/// The three rows of Table 1: conventional hardware (MESI), software
/// (GPU), and hybrid (DeNovo) coherence.
pub fn table1() -> [ProtocolClass; 3] {
    [
        ProtocolClass {
            name: "Conv HW",
            example: "MESI",
            invalidation: InvalidationInitiator::Writer,
            tracking: UpToDateTracking::Ownership,
            supports_scopes: true,
        },
        ProtocolClass {
            name: "SW",
            example: "GPU",
            invalidation: InvalidationInitiator::Reader,
            tracking: UpToDateTracking::Writethrough,
            supports_scopes: true,
        },
        ProtocolClass {
            name: "Hybrid",
            example: "DeNovo",
            invalidation: InvalidationInitiator::Reader,
            tracking: UpToDateTracking::Ownership,
            supports_scopes: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_the_paper() {
        let rows = table1();
        assert_eq!(rows[0].invalidation, InvalidationInitiator::Writer);
        assert_eq!(rows[1].tracking, UpToDateTracking::Writethrough);
        assert_eq!(rows[2].invalidation, InvalidationInitiator::Reader);
        assert_eq!(rows[2].tracking, UpToDateTracking::Ownership);
        assert!(rows.iter().all(|r| r.supports_scopes));
    }

    #[test]
    fn display_is_tabular() {
        for r in table1() {
            let s = r.to_string();
            assert!(s.contains(r.example));
        }
    }
}
