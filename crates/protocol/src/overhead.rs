//! The paper's §4.2 protocol implementation overheads: coherence state
//! bits per configuration, at the L1 and the L2.
//!
//! All five configurations keep tags at 64 B line granularity; they
//! differ in per-line and per-word state:
//!
//! | Config | L1 | L2 |
//! |---|---|---|
//! | GPU-D  | 1 valid bit / line | 1 valid bit / line |
//! | GPU-H  | + 1 dirty bit / word | 1 valid bit / line |
//! | DeNovo | 2 state bits / word | 1 valid + 1 dirty / line + 1 bit / word |
//! | DD+RO  | as DeNovo (reuses the spare state encoding) | as DeNovo |

use gsim_types::{ProtocolConfig, LINE_BYTES, WORDS_PER_LINE};

/// State-bit overhead of one configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateBits {
    /// Bits per cache line at the L1 (line-level state).
    pub l1_per_line: u32,
    /// Bits per word at the L1.
    pub l1_per_word: u32,
    /// Bits per cache line at the L2.
    pub l2_per_line: u32,
    /// Bits per word at the L2.
    pub l2_per_word: u32,
}

impl StateBits {
    /// The §4.2 accounting for `config`.
    pub fn of(config: ProtocolConfig) -> StateBits {
        match config {
            ProtocolConfig::Gd => StateBits {
                l1_per_line: 1,
                l1_per_word: 0,
                l2_per_line: 1,
                l2_per_word: 0,
            },
            ProtocolConfig::Gh => StateBits {
                l1_per_line: 1,
                l1_per_word: 1, // partial-block dirty bits
                l2_per_line: 1,
                l2_per_word: 0,
            },
            // DeNovo has 3 states -> 2 bits per word; DD+RO reuses the
            // spare fourth encoding, so no extra bits.
            ProtocolConfig::Dd | ProtocolConfig::DdRo | ProtocolConfig::Dh => StateBits {
                l1_per_line: 0,
                l1_per_word: 2,
                l2_per_line: 2, // valid + dirty
                l2_per_word: 1, // owned-elsewhere marker
            },
        }
    }

    /// Total L1 state bits per cache line.
    pub fn l1_bits_per_line(&self) -> u32 {
        self.l1_per_line + self.l1_per_word * WORDS_PER_LINE as u32
    }

    /// Total L2 state bits per cache line.
    pub fn l2_bits_per_line(&self) -> u32 {
        self.l2_per_line + self.l2_per_word * WORDS_PER_LINE as u32
    }

    /// L1 state overhead relative to the line's data bits.
    pub fn l1_overhead_fraction(&self) -> f64 {
        self.l1_bits_per_line() as f64 / (LINE_BYTES as f64 * 8.0)
    }

    /// L2 state overhead relative to the line's data bits.
    pub fn l2_overhead_fraction(&self) -> f64 {
        self.l2_bits_per_line() as f64 / (LINE_BYTES as f64 * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_counts_match_section_4_2() {
        assert_eq!(StateBits::of(ProtocolConfig::Gd).l1_bits_per_line(), 1);
        assert_eq!(StateBits::of(ProtocolConfig::Gh).l1_bits_per_line(), 17);
        assert_eq!(StateBits::of(ProtocolConfig::Dd).l1_bits_per_line(), 32);
        assert_eq!(StateBits::of(ProtocolConfig::Dd).l2_bits_per_line(), 18);
        // DD+RO adds nothing over DD (spare encoding reuse).
        assert_eq!(
            StateBits::of(ProtocolConfig::DdRo),
            StateBits::of(ProtocolConfig::Dd)
        );
    }

    #[test]
    fn overheads_are_a_few_percent() {
        // The paper calls the increments "3% overhead" steps: GH adds
        // ~3% over GD at the L1, DeNovo ~3% over GH.
        let gd = StateBits::of(ProtocolConfig::Gd).l1_overhead_fraction();
        let gh = StateBits::of(ProtocolConfig::Gh).l1_overhead_fraction();
        let dd = StateBits::of(ProtocolConfig::Dd).l1_overhead_fraction();
        assert!(gd < 0.01);
        assert!((gh - gd - 0.03).abs() < 0.01);
        assert!((dd - gh - 0.03).abs() < 0.01);
        assert!(StateBits::of(ProtocolConfig::Dd).l2_overhead_fraction() < 0.05);
    }
}
