//! The DeNovo hybrid hardware-software coherence protocol applied to GPUs
//! (the paper's DeNovo-D, DeNovo-D+RO, and DeNovo-H configurations).
//!
//! DeNovo (paper §3) keeps coherence state per *word* with exactly three
//! states — Invalid, Valid, Registered (here [`WordState::Owned`]) — and
//! no transient states, because it exploits data-race-freedom and has no
//! writer-initiated invalidations. The shared L2 doubles as the
//! *registry*: each word either holds the up-to-date value or the ID of
//! the owning L1.
//!
//! * **Loads** hit on Valid or Registered words; a miss fetches the line
//!   from the home bank, which supplies the words it has and *forwards*
//!   the rest to their owner L1s — only useful words travel (the
//!   "decoupled granularity" advantage of Table 2).
//! * **Stores** buffer in the store buffer; ownership (registration) is
//!   requested lazily — at a release, or early on buffer overflow
//!   (paper §6.2.3: a full store buffer costs only an ownership request
//!   per line, not a data writethrough). Once a word is Registered,
//!   further stores hit in the L1 and bypass the buffer entirely.
//! * **Synchronization** uses DeNovoSync0 (the paper's reference 18):
//!   both sync reads
//!   and sync writes *register*. Racy registrations are served at the
//!   registry in arrival order; a request for an already-registered word
//!   is forwarded to the owner, queueing in the owner's MSHR when the
//!   owner's own acknowledgment is still in flight — a distributed
//!   queue. Same-CU requests coalesce in the MSHR and are all serviced
//!   before any queued remote request.
//! * **Acquires** invalidate only Valid words — Registered words are
//!   up-to-date by construction and survive, which is how DeNovo reuses
//!   written data and synchronization variables across synchronization
//!   boundaries. DD+RO additionally keeps Valid words of the software
//!   read-only region.
//! * **Releases** wait until every buffered store has obtained
//!   registration (no bursty data writethroughs).
//!
//! DeNovo-H adds HRF scopes on top: locally scoped operations skip the
//! invalidate/flush entirely, and with
//! [`DnConfig::delayed_local_ownership`] local sync ops do not register
//! at all (the paper's "can delay obtaining ownership" remark).

use crate::action::{Action, ActionVec, Issue};
use crate::gpu::{L1Config, L2Config};
use gsim_lens::LensHandle;
use gsim_mem::{CacheArray, Dram, InsertOutcome, MemoryImage, MshrFile, StoreBuffer, WordState};
use gsim_prof::ProfHandle;
use gsim_trace::{FlushReason, Level, TraceEvent, TraceHandle, WState};
use gsim_types::{
    AtomicOp, Component, Counts, Cycle, FxHashMap, LineAddr, Msg, MsgKind, NodeId, Region, ReqId,
    Scope, Value, WordAddr, WordMask, WORDS_PER_LINE,
};
use std::collections::VecDeque;

/// A line's worth of data.
type LineData = [Value; WORDS_PER_LINE];

/// Per-line L1 metadata: which Valid words belong to the software
/// read-only region (the DD+RO enhancement reuses spare coherence-state
/// encodings, paper §4.2, so this costs no extra bits).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoBits(pub WordMask);

/// Configuration of a DeNovo L1 controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DnConfig {
    /// Placement and sizing shared with the GPU protocol.
    pub l1: L1Config,
    /// DD+RO: keep Valid words of the read-only region at acquires.
    pub read_only_region: bool,
    /// DeNovo-H ablation: locally scoped sync ops do not register; their
    /// results live in the store buffer until a global release.
    pub delayed_local_ownership: bool,
    /// DeNovoSync's reader backoff (the paper's §3 mentions it and omits
    /// it "for simplicity"; we ship it as an opt-in extension): when a
    /// sync-read registration keeps being stolen before it is reused,
    /// later sync reads of that word back off exponentially instead of
    /// joining the registry's distributed queue.
    pub sync_read_backoff: bool,
}

impl DnConfig {
    /// Baseline DeNovo-D parameters for `node`.
    pub fn micro15(node: NodeId) -> Self {
        DnConfig {
            l1: L1Config::micro15(node),
            read_only_region: false,
            delayed_local_ownership: false,
            sync_read_backoff: false,
        }
    }
}

/// Per-word read-read contention state for the DeNovoSync backoff.
#[derive(Debug, Default, Clone, Copy)]
struct BackoffState {
    /// Exponential level: the next backoff is `BACKOFF_BASE << level`.
    level: u32,
    /// Whether the word was reused (hit) since its last grant here.
    used_since_grant: bool,
    /// The pending attempt already served its backoff and may issue.
    primed: bool,
}

/// Base sync-read backoff in cycles (doubles per contention event).
const BACKOFF_BASE: Cycle = 32;
/// Maximum backoff level (caps the delay at `32 << 5` = 1024 cycles).
const BACKOFF_MAX_LEVEL: u32 = 5;

/// What a thread block (or the release machinery) awaits on a line fill.
#[derive(Clone, Copy, Debug)]
enum Waiter {
    /// A demand load of one word.
    Load { req: ReqId, word: WordAddr },
    /// A synchronization operation awaiting registration of its word.
    Atomic {
        req: ReqId,
        word: WordAddr,
        op: AtomicOp,
        operands: [Value; 2],
    },
    /// A delayed-ownership local sync op awaiting a plain data fill.
    DelayedAtomic {
        req: ReqId,
        word: WordAddr,
        op: AtomicOp,
        operands: [Value; 2],
    },
}

/// A remote request queued behind this L1's own in-flight registration —
/// DeNovoSync0's distributed queue.
#[derive(Clone, Copy, Debug)]
struct QueuedFwd {
    mask: WordMask,
    kind: FwdKind,
}

#[derive(Clone, Copy, Debug)]
enum FwdKind {
    /// A forwarded data read; ownership stays here.
    Read { requester: NodeId },
    /// An ownership transfer to `new_owner`.
    Reg { new_owner: NodeId, sync: bool },
}

/// Buffered store values whose registration request is in flight.
#[derive(Clone, Copy, Debug)]
struct RegPending {
    mask: WordMask,
    data: LineData,
}

/// The per-CU L1 controller of the DeNovo protocol.
///
/// See the [module documentation](self) for the protocol. Like
/// [`GpuL1`](crate::GpuL1), this is a pure state machine returning
/// [`Action`]s.
#[derive(Debug)]
pub struct DnL1 {
    config: DnConfig,
    cache: CacheArray<RoBits>,
    /// Plain stores not yet sent for registration.
    sb: StoreBuffer,
    /// Store values whose registration is in flight, by line.
    reg_pending: FxHashMap<LineAddr, RegPending>,
    mshr: MshrFile<Waiter, QueuedFwd>,
    /// Words with a *sync* registration in flight: a plain read fill for
    /// such a word must not fill it or complete its waiters — only the
    /// registration grant may (the sync op needs ownership, not a copy).
    sync_pending: FxHashMap<LineAddr, WordMask>,
    /// Eviction writebacks in flight, oldest first per line.
    wb_pending: FxHashMap<LineAddr, VecDeque<(WordMask, LineData)>>,
    /// Read-only-region markings awaiting their fill.
    ro_intent: FxHashMap<LineAddr, WordMask>,
    /// Bumped by every global acquire; see `entry_epoch`.
    epoch: u64,
    /// The epoch each outstanding miss line was requested in. A read
    /// fill for an older epoch serves its (pre-acquire) waiters but
    /// installs nothing: post-acquire loads must re-fetch. Registration
    /// grants are exempt — ownership data is fresh by construction.
    entry_epoch: FxHashMap<LineAddr, u64>,
    /// Data-write words with registration in flight (releases wait on 0).
    outstanding_writes: u64,
    pending_releases: Vec<ReqId>,
    /// Per-word contention state (only populated with
    /// [`DnConfig::sync_read_backoff`]).
    backoff: FxHashMap<WordAddr, BackoffState>,
    counts: Counts,
    trace: TraceHandle,
    prof: ProfHandle,
    lens: LensHandle,
    /// Whether an `SbFlushBegin` trace event is awaiting its matching
    /// end (emitted when `outstanding_writes` returns to zero).
    sb_draining: bool,
}

impl DnL1 {
    /// Creates the DeNovo L1 controller for `config.l1.node`.
    pub fn new(config: DnConfig) -> Self {
        DnL1 {
            cache: CacheArray::new(config.l1.geometry),
            sb: StoreBuffer::new(config.l1.sb_entries),
            reg_pending: FxHashMap::default(),
            mshr: MshrFile::new(config.l1.mshr_entries),
            sync_pending: FxHashMap::default(),
            wb_pending: FxHashMap::default(),
            ro_intent: FxHashMap::default(),
            epoch: 0,
            entry_epoch: FxHashMap::default(),
            outstanding_writes: 0,
            pending_releases: Vec::new(),
            backoff: FxHashMap::default(),
            counts: Counts::default(),
            trace: TraceHandle::disabled(),
            prof: ProfHandle::disabled(),
            lens: LensHandle::disabled(),
            sb_draining: false,
            config,
        }
    }

    /// Installs a trace handle; protocol, cache, store-buffer, and MSHR
    /// events flow through it from then on.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.share();
    }

    /// Installs a profiler handle; acquire invalidations feed the
    /// hot-line sketch from then on. Observation-only.
    pub fn set_prof(&mut self, prof: &ProfHandle) {
        self.prof = prof.share();
    }

    /// Installs a lens handle; per-line lifecycle events (invalidation
    /// waste, ownership churn, reuse) feed it from then on.
    /// Observation-only.
    pub fn set_lens(&mut self, lens: &LensHandle) {
        self.lens = lens.share();
    }

    /// Store-buffer entries currently held (profiler occupancy gauge).
    pub fn sb_occupancy(&self) -> usize {
        self.sb.len()
    }

    /// Outstanding MSHR lines (profiler occupancy gauge).
    pub fn mshr_outstanding(&self) -> usize {
        self.mshr.outstanding()
    }

    /// Event counters accumulated so far.
    pub fn counts(&self) -> &Counts {
        &self.counts
    }

    /// The mesh node this L1 lives on.
    pub fn node(&self) -> NodeId {
        self.config.l1.node
    }

    /// Whether every fill, registration, and writeback has completed.
    pub fn quiesced(&self) -> bool {
        self.sb.is_empty()
            && self.mshr.outstanding() == 0
            && self.reg_pending.is_empty()
            && self.sync_pending.is_empty()
            && self.wb_pending.is_empty()
            && self.entry_epoch.is_empty()
            && self.outstanding_writes == 0
            && self.pending_releases.is_empty()
    }

    /// All currently Registered words and their values — the functional
    /// drain the simulator applies to the memory image at end of run
    /// (the real system's CPU would fetch them through the registry).
    pub fn owned_words(&self) -> Vec<(WordAddr, Value)> {
        let mut out = Vec::new();
        for line in self.cache.iter() {
            for i in line.mask_in(WordState::Owned).iter() {
                out.push((line.tag.word(i), line.data[i]));
            }
        }
        out
    }

    /// Valid words left outside the read-only region right after a
    /// global acquire — must be zero: the self-invalidation sweep clears
    /// every Valid word except RO-region words (DD+RO), and only
    /// Registered words legally survive.
    pub fn post_acquire_residue(&self) -> u64 {
        let keep_ro = self.config.read_only_region;
        let mut words = 0u64;
        for l in self.cache.iter() {
            let mut v = l.mask_in(WordState::Valid);
            if keep_ro {
                v = v & !l.extra.0;
            }
            words += u64::from(v.count());
        }
        words
    }

    /// Words whose valid and owned masks overlap, across all lines.
    /// Structurally impossible with the two-bitmap line representation;
    /// audited anyway so a future representation change cannot silently
    /// break the three-state model.
    pub fn state_mask_overlaps(&self) -> u64 {
        let mut words = 0u64;
        for l in self.cache.iter() {
            words += u64::from((l.mask_in(WordState::Valid) & l.mask_in(WordState::Owned)).count());
        }
        words
    }

    /// Store-buffer entries currently pending (line, dirty mask).
    pub fn sb_entries(&self) -> Vec<(LineAddr, WordMask)> {
        self.sb.pending_entries()
    }

    /// Names every resource still allocated after the run drained, each
    /// paired with the trace event that allocated it. Empty iff
    /// [`quiesced`](Self::quiesced) and the store buffer is empty.
    pub fn quiesce_leaks(&self) -> Vec<String> {
        let n = self.config.l1.node;
        let mut leaks = Vec::new();
        for (line, mask) in self.mshr.outstanding_lines() {
            leaks.push(format!(
                "{n}: MSHR entry for line {} ({} word(s) pending; alloc event: mshr-alloc)",
                line.0,
                mask.count()
            ));
        }
        for (line, mask) in self.sb.pending_entries() {
            leaks.push(format!(
                "{n}: store-buffer entry for line {} ({} dirty word(s); alloc event: sb-flush)",
                line.0,
                mask.count()
            ));
        }
        let sorted_lines = |keys: Vec<LineAddr>| {
            let mut k = keys;
            k.sort();
            k
        };
        for line in sorted_lines(self.reg_pending.keys().copied().collect()) {
            leaks.push(format!(
                "{n}: registration in flight for line {} (alloc event: msg-send)",
                line.0
            ));
        }
        for line in sorted_lines(self.sync_pending.keys().copied().collect()) {
            leaks.push(format!(
                "{n}: sync registration in flight for line {} (alloc event: atomic)",
                line.0
            ));
        }
        for line in sorted_lines(self.wb_pending.keys().copied().collect()) {
            leaks.push(format!(
                "{n}: eviction writeback in flight for line {} (alloc event: eviction)",
                line.0
            ));
        }
        for line in sorted_lines(self.entry_epoch.keys().copied().collect()) {
            leaks.push(format!(
                "{n}: miss-epoch record for line {} (alloc event: mshr-alloc)",
                line.0
            ));
        }
        if self.outstanding_writes > 0 {
            leaks.push(format!(
                "{n}: {} data-write registration(s) outstanding (alloc event: msg-send)",
                self.outstanding_writes
            ));
        }
        for req in &self.pending_releases {
            leaks.push(format!(
                "{n}: release {req:?} never completed (alloc event: release)"
            ));
        }
        leaks
    }

    /// Test-only: plants an MSHR entry that will never complete, so the
    /// quiesce audit's leak naming can be exercised end to end.
    #[doc(hidden)]
    pub fn debug_leak_mshr_entry(&mut self, line: LineAddr) {
        self.mshr.request(
            line,
            WordMask::single(0),
            Waiter::Load {
                req: ReqId(u64::MAX),
                word: line.word(0),
            },
        );
    }

    /// Test-only: plants a store-buffer word that no release will drain
    /// (bypassing the registration path), for the leak-naming tests.
    #[doc(hidden)]
    pub fn debug_leak_sb_word(&mut self, word: WordAddr, value: Value) {
        let _ = self.sb.write(word, value);
    }

    fn msg_to_home(&self, line: LineAddr, kind: MsgKind) -> Msg {
        Msg {
            src: self.config.l1.node,
            dst: self.config.l1.home(line),
            dst_comp: Component::L2,
            kind,
        }
    }

    /// The freshest locally visible value, honouring the buffering
    /// hierarchy: store buffer, then in-flight registrations, then the
    /// cache.
    fn local_value(&mut self, word: WordAddr) -> Option<Value> {
        if let Some(v) = self.sb.lookup(word) {
            return Some(v);
        }
        let i = word.index_in_line();
        if let Some(p) = self.reg_pending.get(&word.line()) {
            if p.mask.contains(i) {
                return Some(p.data[i]);
            }
        }
        let line = self.cache.lookup(word.line())?;
        line.word(i).readable().then(|| line.data[i])
    }

    /// Whether `word` is Registered in the cache.
    fn is_owned(&self, word: WordAddr) -> bool {
        self.cache
            .peek(word.line())
            .map(|l| l.word(word.index_in_line()) == WordState::Owned)
            .unwrap_or(false)
    }

    /// A demand load of `word`; `region` is the software annotation the
    /// DD+RO configuration consumes (conveyed by an opcode bit in the
    /// paper).
    pub fn load(&mut self, word: WordAddr, region: Region, req: ReqId) -> (Issue, ActionVec) {
        if let Some(v) = self.local_value(word) {
            self.counts.l1_accesses += 1;
            self.counts.l1_load_hits += 1;
            self.lens
                .access(self.config.l1.node.index(), word.line(), true);
            if region == Region::ReadOnly && self.config.read_only_region {
                if let Some(l) = self.cache.lookup(word.line()) {
                    l.extra.0.insert(word.index_in_line());
                }
            }
            return (Issue::Hit(v), ActionVec::new());
        }
        let line = word.line();
        let stale = self.entry_epoch.get(&line).is_some_and(|&e| e < self.epoch);
        if !self.mshr.has_room_for(line) || stale {
            // A post-acquire load must not coalesce with a pre-acquire
            // miss: wait for the stale entry to retire and re-fetch.
            return (Issue::Retry, ActionVec::new());
        }
        self.counts.l1_accesses += 1;
        self.counts.l1_load_misses += 1;
        self.lens.access(self.config.l1.node.index(), line, false);
        self.lens.load_miss(self.config.l1.node.index(), word, req);
        self.entry_epoch.entry(line).or_insert(self.epoch);
        let i = word.index_in_line();
        if region == Region::ReadOnly && self.config.read_only_region {
            self.ro_intent.entry(line).or_default().insert(i);
        }
        // Fetch the whole line's missing words but wait only on the
        // demand word; the registry answers every word, directly or via
        // an owner forward.
        let readable = self
            .cache
            .peek(line)
            .map(|l| l.readable_mask())
            .unwrap_or_default();
        let fetch = !readable;
        let was_pending = self.mshr.is_pending(line);
        let to_send =
            self.mshr
                .request_fetch(line, WordMask::single(i), fetch, Waiter::Load { req, word });
        if !was_pending {
            self.emit_mshr_alloc(line);
        }
        let mut actions = ActionVec::new();
        if !to_send.is_empty() {
            actions.push(Action::send(self.msg_to_home(
                line,
                MsgKind::ReadReq {
                    line,
                    mask: to_send,
                    requester: self.config.l1.node,
                },
            )));
        }
        (Issue::Pending, actions)
    }

    /// A data store. Registered words are written in place (no store
    /// buffer); otherwise the value is buffered and registered lazily at
    /// the next release or on buffer overflow.
    pub fn store(&mut self, word: WordAddr, value: Value) -> (Issue, ActionVec) {
        self.counts.l1_accesses += 1;
        self.lens.store(self.config.l1.node.index(), word);
        let i = word.index_in_line();
        if self.is_owned(word) {
            self.counts.l1_store_hits += 1;
            let l = self
                .cache
                .lookup(word.line())
                .expect("owned implies resident");
            l.data[i] = value;
            return (Issue::Hit(0), ActionVec::new());
        }
        if let Some(p) = self.reg_pending.get_mut(&word.line()) {
            if p.mask.contains(i) {
                p.data[i] = value;
                return (Issue::Hit(0), ActionVec::new());
            }
        }
        let mut actions = ActionVec::new();
        if let gsim_mem::StoreOutcome::Overflow(e) = self.sb.write(word, value) {
            self.counts.sb_overflow_flushes += 1;
            let pending = e.mask.count();
            self.begin_sb_drain(FlushReason::Overflow, pending);
            self.register_entry(e.line, e.mask, &e.data, &mut actions);
        }
        (Issue::Hit(0), actions)
    }

    /// Emits the `MshrAlloc` trace event for a freshly allocated entry.
    fn emit_mshr_alloc(&mut self, line: LineAddr) {
        let (node, outstanding) = (self.config.l1.node, self.mshr.outstanding() as u32);
        self.trace.emit(|| TraceEvent::MshrAlloc {
            node,
            line,
            outstanding,
        });
    }

    /// Emits the `SbFlushBegin` trace event and arms the matching end
    /// (fired when `outstanding_writes` drains back to zero).
    fn begin_sb_drain(&mut self, reason: FlushReason, pending: u32) {
        if !self.sb_draining {
            self.sb_draining = true;
            let node = self.config.l1.node;
            self.trace.emit(|| TraceEvent::SbFlushBegin {
                node,
                reason,
                pending,
            });
        }
    }

    /// Sends (or coalesces) a data-registration request for the given
    /// buffered words, moving their values into `reg_pending`.
    ///
    /// Data registrations deliberately bypass the MSHR: a read of the
    /// same word may already be in flight, and the registration must
    /// still be sent (the read fill cannot grant ownership). They need
    /// no distributed-queue slot either — the registry acks a data
    /// registration itself, so on the FIFO L2-to-L1 path the grant
    /// always lands before any forward for the newly owned words.
    fn register_entry(
        &mut self,
        line: LineAddr,
        mask: WordMask,
        data: &LineData,
        actions: &mut ActionVec,
    ) {
        let p = self.reg_pending.entry(line).or_insert(RegPending {
            mask: WordMask::empty(),
            data: [0; WORDS_PER_LINE],
        });
        let new_words = mask & !p.mask;
        for i in mask.iter() {
            p.data[i] = data[i];
        }
        p.mask |= mask;
        if new_words.is_empty() {
            return;
        }
        self.outstanding_writes += new_words.count() as u64;
        self.counts.registrations += new_words.count() as u64;
        actions.push(Action::send(self.msg_to_home(
            line,
            MsgKind::RegReq {
                line,
                mask: new_words,
                sync: false,
                requester: self.config.l1.node,
            },
        )));
    }

    /// A synchronization access (DeNovoSync0): performed at the L1 once
    /// the word is Registered; otherwise a sync registration is issued.
    ///
    /// With [`DnConfig::delayed_local_ownership`], a `local` op skips
    /// registration entirely: it reads the freshest local copy, applies
    /// the operation, and buffers the result like a plain store.
    ///
    /// # Panics
    ///
    /// Panics if the word has an unregistered buffered plain store — a
    /// data race under DRF/HRF.
    pub fn atomic(
        &mut self,
        word: WordAddr,
        op: AtomicOp,
        operands: [Value; 2],
        local: bool,
        req: ReqId,
    ) -> (Issue, ActionVec) {
        if local && self.config.delayed_local_ownership {
            return self.delayed_atomic(word, op, operands, req);
        }
        let i = word.index_in_line();
        if self.is_owned(word) {
            self.counts.l1_accesses += 1;
            self.counts.l1_atomics += 1;
            self.counts.l1_atomic_hits += 1;
            if self.config.sync_read_backoff {
                if let Some(b) = self.backoff.get_mut(&word) {
                    b.used_since_grant = true;
                    b.level = 0;
                }
            }
            let l = self
                .cache
                .lookup(word.line())
                .expect("owned implies resident");
            let (new, old) = op.apply(l.data[i], operands);
            if op.writes() {
                l.data[i] = new;
            }
            return (Issue::Hit(old), ActionVec::new());
        }
        assert!(
            self.sb.lookup(word).is_none(),
            "sync access to {word:?} with an unregistered buffered store: \
             the program is racy under DRF"
        );
        let line = word.line();
        if !self.mshr.has_room_for(line) {
            return (Issue::Retry, ActionVec::new());
        }
        // DeNovoSync reader backoff: a contended sync read throttles
        // itself instead of re-joining the distributed queue — unless a
        // registration for the word is already in flight here (then it
        // coalesces for free).
        if self.config.sync_read_backoff && op == AtomicOp::Read {
            let already = self
                .sync_pending
                .get(&line)
                .is_some_and(|sp| sp.contains(i));
            if !already {
                if let Some(b) = self.backoff.get_mut(&word) {
                    if b.level > 0 && !b.primed {
                        b.primed = true; // the retried attempt goes through
                        return (Issue::RetryAfter(BACKOFF_BASE << b.level), ActionVec::new());
                    }
                    b.primed = false;
                }
            }
        }
        self.counts.l1_accesses += 1;
        self.counts.l1_atomics += 1;
        self.entry_epoch.entry(line).or_insert(self.epoch);
        // The registration must go out even when a plain read of the
        // same word is already in flight (the read fill cannot grant
        // ownership) — so the dedup key is `sync_pending`, not the
        // MSHR's pending mask.
        let was_pending = self.mshr.is_pending(line);
        self.mshr.request_fetch(
            line,
            WordMask::single(i),
            WordMask::single(i),
            Waiter::Atomic {
                req,
                word,
                op,
                operands,
            },
        );
        if !was_pending {
            self.emit_mshr_alloc(line);
        }
        let sp = self.sync_pending.entry(line).or_default();
        let mut actions = ActionVec::new();
        if !sp.contains(i) {
            sp.insert(i);
            self.counts.registrations += 1;
            actions.push(Action::send(self.msg_to_home(
                line,
                MsgKind::RegReq {
                    line,
                    mask: WordMask::single(i),
                    sync: true,
                    requester: self.config.l1.node,
                },
            )));
        }
        (Issue::Pending, actions)
    }

    /// The delayed-ownership local sync path (DeNovo-H ablation).
    fn delayed_atomic(
        &mut self,
        word: WordAddr,
        op: AtomicOp,
        operands: [Value; 2],
        req: ReqId,
    ) -> (Issue, ActionVec) {
        if let Some(current) = self.local_value(word) {
            self.counts.l1_accesses += 1;
            self.counts.l1_atomics += 1;
            self.counts.l1_atomic_hits += 1;
            let (new, old) = op.apply(current, operands);
            let mut actions = ActionVec::new();
            if op.writes() {
                if self.is_owned(word) {
                    let l = self
                        .cache
                        .lookup(word.line())
                        .expect("owned implies resident");
                    l.data[word.index_in_line()] = new;
                } else if let gsim_mem::StoreOutcome::Overflow(e) = self.sb.write(word, new) {
                    self.counts.sb_overflow_flushes += 1;
                    self.register_entry(e.line, e.mask, &e.data, &mut actions);
                }
            }
            return (Issue::Hit(old), actions);
        }
        let line = word.line();
        if !self.mshr.has_room_for(line) {
            return (Issue::Retry, ActionVec::new());
        }
        self.counts.l1_accesses += 1;
        self.counts.l1_atomics += 1;
        self.entry_epoch.entry(line).or_insert(self.epoch);
        let i = word.index_in_line();
        let was_pending = self.mshr.is_pending(line);
        let to_send = self.mshr.request_fetch(
            line,
            WordMask::single(i),
            WordMask::single(i),
            Waiter::DelayedAtomic {
                req,
                word,
                op,
                operands,
            },
        );
        if !was_pending {
            self.emit_mshr_alloc(line);
        }
        let mut actions = ActionVec::new();
        if !to_send.is_empty() {
            actions.push(Action::send(self.msg_to_home(
                line,
                MsgKind::ReadReq {
                    line,
                    mask: to_send,
                    requester: self.config.l1.node,
                },
            )));
        }
        (Issue::Pending, actions)
    }

    /// An acquire: self-invalidate Valid words. Registered words are
    /// up-to-date and survive; under DD+RO so do Valid words of the
    /// read-only region. Locally scoped acquires (DeNovo-H) are free.
    pub fn acquire(&mut self, local: bool) {
        if local {
            return;
        }
        self.epoch += 1; // in-flight read fills must not install
        let keep_ro = self.config.read_only_region;
        let mut invalidated: u64 = 0;
        let prof = &self.prof;
        let lens = &self.lens;
        let prof_node = self.config.l1.node.index();
        self.cache.for_each_line_mut(|l| {
            let keep = if keep_ro {
                l.extra.0
            } else {
                WordMask::empty()
            };
            let inv = l.invalidate_valid(keep);
            invalidated += u64::from(inv.count());
            prof.line_invalidated(prof_node, l.tag, u64::from(inv.count()));
            lens.invalidated(prof_node, l.tag, inv);
        });
        self.counts.words_invalidated += invalidated;
        let node = self.config.l1.node;
        self.trace.emit(|| TraceEvent::SyncAcquire {
            node,
            scope: Scope::Global,
            invalidated,
            flash: false,
        });
    }

    /// A release: every buffered store obtains registration; completes
    /// when no data-write registration remains in flight. Locally scoped
    /// releases (DeNovo-H) are free.
    pub fn release(&mut self, local: bool, req: ReqId) -> (Issue, ActionVec) {
        if local {
            return (Issue::Hit(0), ActionVec::new());
        }
        let node = self.config.l1.node;
        self.trace.emit(|| TraceEvent::SyncRelease {
            node,
            scope: Scope::Global,
        });
        let pending = self.sb.len() as u32;
        let mut actions = ActionVec::new();
        while let Some(e) = self.sb.pop_oldest() {
            self.counts.sb_release_flushes += 1;
            self.register_entry(e.line, e.mask, &e.data, &mut actions);
        }
        if self.outstanding_writes == 0 {
            (Issue::Hit(0), actions)
        } else {
            self.begin_sb_drain(FlushReason::Release, pending);
            self.pending_releases.push(req);
            (Issue::Pending, actions)
        }
    }

    /// Delivers a network message to this L1.
    ///
    /// # Panics
    ///
    /// Panics on message kinds a DeNovo L1 never receives (writethrough
    /// acks, L2-executed atomics) and on forwards for words this L1 has
    /// no record of — protocol bugs.
    pub fn handle(&mut self, msg: &Msg) -> ActionVec {
        match msg.kind {
            MsgKind::ReadResp { line, mask, data } => self.fill_read(line, mask, &data),
            MsgKind::RegResp {
                line,
                mask,
                data,
                sync,
            } => {
                if sync {
                    self.fill_sync_grant(line, mask, &data)
                } else {
                    self.fill_data_grant(line, mask)
                }
            }
            MsgKind::RegFwd {
                line,
                mask,
                new_owner,
                sync,
            } => self.forward(line, mask, FwdKind::Reg { new_owner, sync }),
            MsgKind::ReadReq {
                line,
                mask,
                requester,
            } => self.forward(line, mask, FwdKind::Read { requester }),
            MsgKind::WbAck { line, mask } => {
                let q = self
                    .wb_pending
                    .get_mut(&line)
                    .expect("writeback ack without a pending writeback");
                let (front_mask, _) = q.pop_front().expect("pending queue is non-empty");
                assert!(
                    (front_mask & !mask).is_empty(),
                    "writeback ack mask mismatch"
                );
                if q.is_empty() {
                    self.wb_pending.remove(&line);
                }
                ActionVec::new()
            }
            ref k => panic!("DeNovo L1 received unexpected message {k:?}"),
        }
    }

    /// Ensures `line` has a way, writing back any evicted Registered
    /// words (ownership returns to the registry).
    fn ensure_way(&mut self, line: LineAddr, actions: &mut ActionVec) {
        if let InsertOutcome::Evicted(victim) = self.cache.insert(line) {
            let owned = victim.mask_in(WordState::Owned);
            let node = self.config.l1.node;
            self.trace.emit(|| TraceEvent::Eviction {
                node,
                level: Level::L1,
                line: victim.tag,
                owned_words: owned.count(),
            });
            if !owned.is_empty() {
                self.counts.ownership_writebacks += owned.count() as u64;
                self.lens
                    .ownership_writeback(node.index(), victim.tag, owned.count());
                self.wb_pending
                    .entry(victim.tag)
                    .or_default()
                    .push_back((owned, victim.data));
                actions.push(Action::send(self.msg_to_home(
                    victim.tag,
                    MsgKind::WbReq {
                        line: victim.tag,
                        mask: owned,
                        data: victim.data,
                    },
                )));
            }
        }
    }

    /// Applies a data read fill (Valid words) and services waiters.
    /// Words with a sync registration in flight are skipped entirely:
    /// their fill is the registration grant.
    fn fill_read(&mut self, line: LineAddr, mask: WordMask, data: &LineData) -> ActionVec {
        let mask = mask & !self.sync_pending.get(&line).copied().unwrap_or_default();
        let stale = self.entry_epoch.get(&line).is_some_and(|&e| e < self.epoch);
        let mut actions = ActionVec::new();
        if !stale {
            self.ensure_way(line, &mut actions);
            let intent = self.ro_intent.remove(&line).unwrap_or_default();
            let l = self.cache.lookup(line).expect("just ensured");
            let mut installed = 0u32;
            let mut installed_mask = WordMask::default();
            for i in mask.iter() {
                if l.word(i) == WordState::Owned {
                    continue; // never downgrade a Registered word
                }
                l.set_word(i, WordState::Valid);
                l.data[i] = data[i];
                installed += 1;
                installed_mask.insert(i);
                if intent.contains(i) {
                    l.extra.0.insert(i);
                } else {
                    l.extra.0.remove(i);
                }
            }
            self.lens
                .filled(self.config.l1.node.index(), line, installed_mask, false);
            if installed > 0 {
                let node = self.config.l1.node;
                self.trace.emit(|| TraceEvent::StateChange {
                    node,
                    level: Level::L1,
                    line,
                    words: installed,
                    from: WState::Invalid,
                    to: WState::Valid,
                });
            }
            if !(intent & !mask).is_empty() {
                // Part of the intent is still in flight (another
                // response).
                self.ro_intent.insert(line, intent & !mask);
            }
        }
        self.complete_fill(line, mask, Some(data), &mut actions);
        actions
    }

    /// Applies a sync registration grant: the granted words become
    /// Registered with the grant's (freshest) values, then the waiting
    /// sync ops execute in arrival order.
    fn fill_sync_grant(&mut self, line: LineAddr, mask: WordMask, data: &LineData) -> ActionVec {
        if let Some(sp) = self.sync_pending.get_mut(&line) {
            *sp = *sp & !mask;
            if sp.is_empty() {
                self.sync_pending.remove(&line);
            }
        }
        let mut actions = ActionVec::new();
        self.ensure_way(line, &mut actions);
        let l = self.cache.lookup(line).expect("just ensured");
        for i in mask.iter() {
            l.set_word(i, WordState::Owned);
            l.data[i] = data[i];
            l.extra.0.remove(i);
        }
        self.lens
            .filled(self.config.l1.node.index(), line, mask, true);
        let node = self.config.l1.node;
        self.trace.emit(|| TraceEvent::StateChange {
            node,
            level: Level::L1,
            line,
            words: mask.count(),
            from: WState::Invalid,
            to: WState::Owned,
        });
        if self.config.sync_read_backoff {
            for i in mask.iter() {
                let b = self.backoff.entry(line.word(i)).or_default();
                b.used_since_grant = false;
            }
        }
        self.complete_fill(line, mask, None, &mut actions);
        actions
    }

    /// Applies a data registration grant: the buffered store values
    /// become Registered cache contents.
    fn fill_data_grant(&mut self, line: LineAddr, mask: WordMask) -> ActionVec {
        let mut actions = ActionVec::new();
        self.ensure_way(line, &mut actions);
        let p = self
            .reg_pending
            .get_mut(&line)
            .expect("data grant without pending stores");
        debug_assert!((mask & !p.mask).is_empty(), "grant exceeds pending words");
        let l = self.cache.lookup(line).expect("just ensured");
        for i in mask.iter() {
            l.set_word(i, WordState::Owned);
            l.data[i] = p.data[i];
            l.extra.0.remove(i);
        }
        self.lens
            .filled(self.config.l1.node.index(), line, mask, true);
        p.mask = p.mask & !mask;
        if p.mask.is_empty() {
            self.reg_pending.remove(&line);
        }
        let node = self.config.l1.node;
        self.trace.emit(|| TraceEvent::StateChange {
            node,
            level: Level::L1,
            line,
            words: mask.count(),
            from: WState::Invalid,
            to: WState::Owned,
        });
        self.outstanding_writes -= mask.count() as u64;
        if self.outstanding_writes == 0 {
            if self.sb_draining {
                self.sb_draining = false;
                self.trace.emit(|| TraceEvent::SbFlushEnd { node });
            }
            actions.extend(
                self.pending_releases
                    .drain(..)
                    .map(|req| Action::complete(req, 0)),
            );
        }
        actions
    }

    /// Retires MSHR waiters satisfied by a fill, then (if the entry
    /// retired) serves the queued remote forwards — local requests always
    /// drain first (DeNovoSync0). `fill_data` backs waiter completion
    /// when a stale (pre-acquire) fill was not installed in the cache.
    fn complete_fill(
        &mut self,
        line: LineAddr,
        mask: WordMask,
        fill_data: Option<&LineData>,
        actions: &mut ActionVec,
    ) {
        let (done, fwds) = self.mshr.complete(line, mask);
        if !self.mshr.is_pending(line) {
            self.entry_epoch.remove(&line);
            let (node, waiters) = (self.config.l1.node, done.len() as u32);
            self.trace.emit(|| TraceEvent::MshrRetire {
                node,
                line,
                waiters,
            });
        }
        for w in done {
            match w {
                Waiter::Load { req, word } => {
                    let v = self
                        .local_value(word)
                        .or_else(|| fill_data.map(|d| d[word.index_in_line()]))
                        .expect("filled word is readable");
                    actions.push(Action::complete(req, v));
                }
                Waiter::Atomic {
                    req,
                    word,
                    op,
                    operands,
                } => {
                    let i = word.index_in_line();
                    let l = self
                        .cache
                        .lookup(word.line())
                        .expect("granted word resident");
                    debug_assert_eq!(l.word(i), WordState::Owned);
                    let (new, old) = op.apply(l.data[i], operands);
                    if op.writes() {
                        l.data[i] = new;
                    }
                    actions.push(Action::complete(req, old));
                }
                Waiter::DelayedAtomic {
                    req,
                    word,
                    op,
                    operands,
                } => {
                    let current = self
                        .local_value(word)
                        .or_else(|| fill_data.map(|d| d[word.index_in_line()]))
                        .expect("filled word is readable");
                    let (new, old) = op.apply(current, operands);
                    if op.writes() {
                        if let gsim_mem::StoreOutcome::Overflow(e) = self.sb.write(word, new) {
                            self.counts.sb_overflow_flushes += 1;
                            self.register_entry(e.line, e.mask, &e.data, actions);
                        }
                    }
                    actions.push(Action::complete(req, old));
                }
            }
        }
        for f in fwds {
            let served = self.serve_forward(line, f.mask, f.kind, actions);
            assert_eq!(
                served, f.mask,
                "queued forward for words the fill did not deliver"
            );
        }
    }

    /// Handles a forwarded request from the registry: serve what is
    /// locally available (cache, then in-flight writebacks), queue the
    /// rest behind our own pending registration.
    fn forward(&mut self, line: LineAddr, mask: WordMask, kind: FwdKind) -> ActionVec {
        let mut actions = ActionVec::new();
        let served = self.serve_forward(line, mask, kind, &mut actions);
        let rest = mask & !served;
        if !rest.is_empty() {
            self.counts.reg_queued += 1;
            self.mshr
                .queue_fwd(line, QueuedFwd { mask: rest, kind })
                .unwrap_or_else(|_| {
                    panic!("forward for {line:?} words {rest:?} this L1 has no record of")
                });
        }
        actions
    }

    /// Serves the locally available part of a forward, returning the
    /// served mask.
    fn serve_forward(
        &mut self,
        line: LineAddr,
        mask: WordMask,
        kind: FwdKind,
        actions: &mut ActionVec,
    ) -> WordMask {
        let mut avail = WordMask::empty();
        let mut data = [0; WORDS_PER_LINE];
        if let Some(l) = self.cache.lookup(line) {
            let here = mask & l.mask_in(WordState::Owned);
            for i in here.iter() {
                avail.insert(i);
                data[i] = l.data[i];
            }
        }
        // Words in flight to the registry: the newest writeback element
        // holding each word has the freshest value.
        if let Some(q) = self.wb_pending.get(&line) {
            for i in (mask & !avail).iter() {
                for (m, d) in q.iter().rev() {
                    if m.contains(i) {
                        avail.insert(i);
                        data[i] = d[i];
                        break;
                    }
                }
            }
        }
        if avail.is_empty() {
            return avail;
        }
        match kind {
            FwdKind::Read { requester } => {
                // Ownership stays; just supply the data.
                actions.push(Action::send(Msg {
                    src: self.config.l1.node,
                    dst: requester,
                    dst_comp: Component::L1,
                    kind: MsgKind::ReadResp {
                        line,
                        mask: avail,
                        data,
                    },
                }));
            }
            FwdKind::Reg { new_owner, sync } => {
                // Ownership moves: invalidate every local record. A sync
                // word stolen before we reused it is read-read
                // contention: escalate its backoff (DeNovoSync).
                if self.config.sync_read_backoff {
                    for i in avail.iter() {
                        if let Some(b) = self.backoff.get_mut(&line.word(i)) {
                            b.level = if b.used_since_grant {
                                0
                            } else {
                                (b.level + 1).min(BACKOFF_MAX_LEVEL)
                            };
                        }
                    }
                }
                if let Some(l) = self.cache.lookup(line) {
                    let steal = avail & l.mask_in(WordState::Owned);
                    let stolen = steal.count();
                    l.set_mask(steal, WordState::Invalid);
                    if stolen > 0 {
                        self.lens
                            .ownership_stolen(self.config.l1.node.index(), line, stolen);
                        let node = self.config.l1.node;
                        self.trace.emit(|| TraceEvent::StateChange {
                            node,
                            level: Level::L1,
                            line,
                            words: stolen,
                            from: WState::Owned,
                            to: WState::Invalid,
                        });
                    }
                }
                if let Some(q) = self.wb_pending.get_mut(&line) {
                    for (m, _) in q.iter_mut() {
                        *m = *m & !avail;
                    }
                }
                if sync {
                    actions.push(Action::send(Msg {
                        src: self.config.l1.node,
                        dst: new_owner,
                        dst_comp: Component::L1,
                        kind: MsgKind::RegResp {
                            line,
                            mask: avail,
                            data,
                            sync: true,
                        },
                    }));
                }
                // Data-write transfers need no reply: the registry
                // already granted the new owner, who overwrites the
                // whole word.
            }
        }
        avail
    }
}

/// Per-line registry metadata: the owning L1 of each word, if any.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Owners(pub [Option<NodeId>; WORDS_PER_LINE]);

/// The DeNovo shared L2: data banks doubling as the *registry*.
///
/// Each resident word is either up-to-date here
/// ([`WordState::Valid`]/[`WordState::Owned`] = clean/dirty) or
/// registered to an L1 ([`WordState::Invalid`] with an [`Owners`] entry).
/// Racy registrations are served immediately in arrival order; requests
/// for registered words are forwarded to the owner (paper §3).
///
/// When a bank evicts a line that still has registered words, the owner
/// ids spill to an unbounded *overflow table* instead of triggering
/// recalls; see DESIGN.md §6 for why this substitution is benign at the
/// paper's 4 MB L2.
#[derive(Debug)]
pub struct DnL2 {
    config: L2Config,
    banks: Vec<CacheArray<Owners>>,
    /// Per-bank in-order pipeline (see `GpuL2::bank_busy`): responses
    /// and forwards leave every bank in arrival order, which is what
    /// makes the grant-before-forward and ack-before-forward invariants
    /// of the L1 controller hold.
    bank_busy: Vec<Cycle>,
    overflow: FxHashMap<LineAddr, Owners>,
    memory: MemoryImage,
    dram: Dram,
    counts: Counts,
    trace: TraceHandle,
    prof: ProfHandle,
    lens: LensHandle,
}

impl DnL2 {
    /// Creates the registry over an initial memory image.
    pub fn new(config: L2Config, memory: MemoryImage) -> Self {
        DnL2 {
            banks: (0..config.banks)
                .map(|_| CacheArray::new(config.bank_geometry))
                .collect(),
            bank_busy: vec![0; config.banks],
            overflow: FxHashMap::default(),
            dram: Dram::new(config.dram),
            memory,
            counts: Counts::default(),
            trace: TraceHandle::disabled(),
            prof: ProfHandle::disabled(),
            lens: LensHandle::disabled(),
            config,
        }
    }

    /// Installs a trace handle; registry evictions and ownership
    /// transfers are traced from then on.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.share();
    }

    /// Installs a profiler handle; registry operations, ownership
    /// transfers, and forwards feed the L2 hot-line sketch from then on.
    /// Observation-only.
    pub fn set_prof(&mut self, prof: &ProfHandle) {
        self.prof = prof.share();
    }

    /// Installs a lens handle; registry registration churn and ownership
    /// transfers feed the per-line lifecycle table from then on.
    /// Observation-only.
    pub fn set_lens(&mut self, lens: &LensHandle) {
        self.lens = lens.share();
    }

    /// Starts an in-order bank operation on `line` at `now`; returns the
    /// delay after which this operation's messages go out.
    fn bank_op(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        let bank = self.bank_index(line);
        let start = now.max(self.bank_busy[bank]);
        let d = self.ensure_line(start, line);
        self.bank_busy[bank] = start + d + 1;
        start + d + self.config.latency - now
    }

    /// Event counters accumulated so far.
    pub fn counts(&self) -> &Counts {
        &self.counts
    }

    /// The functional memory image. Registered words live in their owner
    /// L1s until the simulator drains them at end of run.
    pub fn memory(&self) -> &MemoryImage {
        &self.memory
    }

    /// Every word the registry currently records as registered, with its
    /// owner — bank arrays and the overflow spill table combined, sorted
    /// by word. The conformance checker compares this against the L1s'
    /// actual Registered words at end of run.
    pub fn registry_owners(&self) -> Vec<(WordAddr, NodeId)> {
        let mut out = Vec::new();
        for bank in &self.banks {
            for line in bank.iter() {
                for (i, owner) in line.extra.0.iter().enumerate() {
                    if let Some(n) = owner {
                        out.push((line.tag.word(i), *n));
                    }
                }
            }
        }
        for (line, owners) in &self.overflow {
            for (i, owner) in owners.0.iter().enumerate() {
                if let Some(n) = owner {
                    out.push((line.word(i), *n));
                }
            }
        }
        out.sort_by_key(|&(w, _)| w);
        out
    }

    /// Mutable access to the memory image (host-side initialization and
    /// the end-of-run ownership drain).
    pub fn memory_mut(&mut self) -> &mut MemoryImage {
        &mut self.memory
    }

    fn bank_index(&self, line: LineAddr) -> usize {
        (line.0 % self.config.banks as u64) as usize
    }

    /// Ensures `line` is resident in its bank, restoring spilled owner
    /// ids, and returns the extra DRAM delay (0 on a bank hit).
    fn ensure_line(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        let bank = self.bank_index(line);
        if self.banks[bank].contains(line) {
            return 0;
        }
        let done = self.dram.access(now, line);
        self.counts.dram_reads += 1;
        let data = self.memory.read_line(line);
        let owners = self.overflow.remove(&line).unwrap_or_default();
        if let InsertOutcome::Evicted(victim) = self.banks[bank].insert(line) {
            self.spill_victim(now, victim);
        }
        let l = self.banks[bank].lookup(line).expect("just inserted");
        for (i, owner) in owners.0.iter().enumerate() {
            if owner.is_some() {
                l.set_word(i, WordState::Invalid);
            } else {
                l.set_word(i, WordState::Valid);
                l.data[i] = data[i];
            }
        }
        l.extra = owners;
        done - now
    }

    /// Writes a victim's dirty words to memory and spills its registered
    /// words' owner ids to the overflow table.
    fn spill_victim(&mut self, now: Cycle, victim: gsim_mem::CacheLine<Owners>) {
        let dirty = victim.mask_in(WordState::Owned);
        let (home, bank) = (victim.tag, self.bank_index(victim.tag) as u8);
        self.trace.emit(|| TraceEvent::Eviction {
            node: NodeId(bank),
            level: Level::L2,
            line: home,
            owned_words: dirty.count(),
        });
        if !dirty.is_empty() {
            self.memory.write_line(victim.tag, dirty, &victim.data);
            self.dram.access(now, victim.tag);
            self.counts.dram_writes += 1;
        }
        if victim.extra.0.iter().any(|o| o.is_some()) {
            let spilled = victim.extra.0.iter().filter(|o| o.is_some()).count();
            self.counts.registry_overflow_words += spilled as u64;
            self.overflow.insert(victim.tag, victim.extra);
        }
    }

    /// Delivers a network message to the addressed registry bank.
    ///
    /// # Panics
    ///
    /// Panics on GPU-only message kinds (writethroughs, L2 atomics) — a
    /// protocol bug.
    pub fn handle(&mut self, now: Cycle, msg: &Msg) -> ActionVec {
        match msg.kind {
            MsgKind::ReadReq {
                line,
                mask,
                requester,
            } => self.read(now, msg.dst, line, mask, requester),
            MsgKind::RegReq {
                line,
                mask,
                sync,
                requester,
            } => self.register(now, msg.dst, line, mask, sync, requester),
            MsgKind::WbReq { line, mask, data } => self.writeback(now, msg, line, mask, &data),
            ref k => panic!("DeNovo L2 received unexpected message {k:?}"),
        }
    }

    /// A data read: supply what the bank has, forward the rest to the
    /// owning L1s (the DeNovo extra hop).
    fn read(
        &mut self,
        now: Cycle,
        bank_node: NodeId,
        line: LineAddr,
        mask: WordMask,
        requester: NodeId,
    ) -> ActionVec {
        self.counts.l2_accesses += 1;
        self.prof.l2_access(line);
        let delay = self.bank_op(now, line);
        let bank = self.bank_index(line);
        let l = self.banks[bank].lookup(line).expect("resident");
        let mut avail = WordMask::empty();
        let mut by_owner: FxHashMap<NodeId, WordMask> = FxHashMap::default();
        for i in mask.iter() {
            match l.extra.0[i] {
                Some(owner) => by_owner.entry(owner).or_default().insert(i),
                None => avail.insert(i),
            }
        }
        let data = l.data;
        let mut actions = ActionVec::new();
        if !avail.is_empty() {
            actions.push(Action::Send {
                msg: Msg {
                    src: bank_node,
                    dst: requester,
                    dst_comp: Component::L1,
                    kind: MsgKind::ReadResp {
                        line,
                        mask: avail,
                        data,
                    },
                },
                delay,
            });
        }
        for (owner, m) in sorted(by_owner) {
            self.counts.reg_forwards += 1;
            self.prof.registry_forward(line);
            actions.push(Action::Send {
                msg: Msg {
                    src: bank_node,
                    dst: owner,
                    dst_comp: Component::L1,
                    kind: MsgKind::ReadReq {
                        line,
                        mask: m,
                        requester,
                    },
                },
                delay,
            });
        }
        actions
    }

    /// A registration: grant available words immediately (in arrival
    /// order — DeNovoSync0 never blocks at the registry) and forward
    /// already-registered words to their previous owners.
    fn register(
        &mut self,
        now: Cycle,
        bank_node: NodeId,
        line: LineAddr,
        mask: WordMask,
        sync: bool,
        requester: NodeId,
    ) -> ActionVec {
        self.counts.l2_accesses += 1;
        self.prof.l2_access(line);
        let delay = self.bank_op(now, line);
        let bank = self.bank_index(line);
        let l = self.banks[bank].lookup(line).expect("resident");
        let mut granted = WordMask::empty();
        let mut by_owner: FxHashMap<NodeId, WordMask> = FxHashMap::default();
        for i in mask.iter() {
            match l.extra.0[i] {
                Some(prev) => by_owner.entry(prev).or_default().insert(i),
                None => granted.insert(i),
            }
            l.extra.0[i] = Some(requester);
            l.set_word(i, WordState::Invalid); // the value now lives at the owner
        }
        self.trace.emit(|| TraceEvent::StateChange {
            node: bank_node,
            level: Level::L2,
            line,
            words: mask.count(),
            from: WState::Valid,
            to: WState::Invalid,
        });
        let data = l.data;
        self.lens.l2_register(line, mask.count());
        let mut actions = ActionVec::new();
        if !granted.is_empty() {
            // Sync grants carry the current value (the RMW reads it);
            // data grants are pure acks.
            actions.push(Action::Send {
                msg: Msg {
                    src: bank_node,
                    dst: requester,
                    dst_comp: Component::L1,
                    kind: MsgKind::RegResp {
                        line,
                        mask: granted,
                        data,
                        sync,
                    },
                },
                delay,
            });
        }
        for (prev, m) in sorted(by_owner) {
            self.counts.reg_forwards += 1;
            // The words in `m` change registered owner (ping-pong) and
            // the previous owner takes a forward.
            self.prof.registry_forward(line);
            self.prof.ownership_transfer(line, u64::from(m.count()));
            self.lens.l2_transfer(line, m.count());
            actions.push(Action::Send {
                msg: Msg {
                    src: bank_node,
                    dst: prev,
                    dst_comp: Component::L1,
                    kind: MsgKind::RegFwd {
                        line,
                        mask: m,
                        new_owner: requester,
                        sync,
                    },
                },
                delay,
            });
            if !sync {
                // The previous owner's value is dead (the new owner
                // overwrites whole words): ack the transfer directly.
                actions.push(Action::Send {
                    msg: Msg {
                        src: bank_node,
                        dst: requester,
                        dst_comp: Component::L1,
                        kind: MsgKind::RegResp {
                            line,
                            mask: m,
                            data,
                            sync: false,
                        },
                    },
                    delay,
                });
            }
        }
        actions
    }

    /// An eviction writeback: accept words the sender still owns (stale
    /// words lost a racing transfer and are ignored) and ack.
    fn writeback(
        &mut self,
        now: Cycle,
        msg: &Msg,
        line: LineAddr,
        mask: WordMask,
        data: &LineData,
    ) -> ActionVec {
        self.counts.l2_accesses += 1;
        self.prof.l2_access(line);
        let delay = self.bank_op(now, line);
        let bank = self.bank_index(line);
        let l = self.banks[bank].lookup(line).expect("resident");
        for i in mask.iter() {
            if l.extra.0[i] == Some(msg.src) {
                l.extra.0[i] = None;
                l.set_word(i, WordState::Owned); // dirty at the L2 now
                l.data[i] = data[i];
            }
        }
        ActionVec::of(Action::Send {
            msg: Msg {
                src: msg.dst,
                dst: msg.src,
                dst_comp: Component::L1,
                kind: MsgKind::WbAck { line, mask },
            },
            delay,
        })
    }

    /// Flushes every dirty L2 word into the memory image (end of run).
    pub fn flush_to_memory(&mut self) {
        for bank in &mut self.banks {
            let mut writes = Vec::new();
            bank.for_each_line_mut(|l| {
                let dirty = l.mask_in(WordState::Owned);
                if !dirty.is_empty() {
                    writes.push((l.tag, dirty, l.data));
                    l.set_mask(dirty, WordState::Valid);
                }
            });
            for (tag, mask, data) in writes {
                self.memory.write_line(tag, mask, &data);
            }
        }
    }
}

/// Deterministic iteration order for per-owner forward maps.
fn sorted(m: FxHashMap<NodeId, WordMask>) -> Vec<(NodeId, WordMask)> {
    let mut v: Vec<_> = m.into_iter().collect();
    v.sort_by_key(|(n, _)| *n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_at(node: u8) -> DnL1 {
        DnL1::new(DnConfig::micro15(NodeId(node)))
    }

    fn l2_with(words: &[(u64, Value)]) -> DnL2 {
        let mut mem = MemoryImage::new();
        for &(w, v) in words {
            mem.write_word(WordAddr(w), v);
        }
        DnL2::new(L2Config::default(), mem)
    }

    /// A tiny deterministic message pump over a set of L1s and the L2:
    /// delivers sends breadth-first and collects completions.
    fn pump(l1s: &mut [&mut DnL1], l2: &mut DnL2, actions: ActionVec) -> ActionVec {
        let mut queue: VecDeque<Action> = actions.into_iter().collect();
        let mut out = ActionVec::new();
        while let Some(a) = queue.pop_front() {
            let Action::Send { msg, .. } = a else {
                out.push(a);
                continue;
            };
            let replies = match msg.dst_comp {
                Component::L2 => l2.handle(0, &msg),
                Component::L1 => l1s
                    .iter_mut()
                    .find(|l| l.config.l1.node == msg.dst)
                    .expect("destination L1 exists")
                    .handle(&msg),
            };
            queue.extend(replies);
        }
        out
    }

    #[test]
    fn load_miss_fills_line_then_hits() {
        let mut a = l1_at(0);
        let mut l2 = l2_with(&[(3, 30), (4, 40)]);
        let (issue, acts) = a.load(WordAddr(3), Region::Default, ReqId(1));
        assert_eq!(issue, Issue::Pending);
        let done = pump(&mut [&mut a], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(1), 30)]);
        // The rest of the line came along.
        let (issue, _) = a.load(WordAddr(4), Region::Default, ReqId(2));
        assert_eq!(issue, Issue::Hit(40));
    }

    #[test]
    fn store_registers_lazily_then_hits() {
        let mut a = l1_at(0);
        let mut l2 = l2_with(&[]);
        let (issue, acts) = a.store(WordAddr(0), 7);
        assert_eq!(issue, Issue::Hit(0));
        assert!(acts.is_empty(), "no registration until the release");
        // Forwarding from the buffer.
        let (issue, _) = a.load(WordAddr(0), Region::Default, ReqId(1));
        assert_eq!(issue, Issue::Hit(7));
        // Release registers and completes.
        let (issue, acts) = a.release(false, ReqId(2));
        assert_eq!(issue, Issue::Pending);
        let done = pump(&mut [&mut a], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(2), 0)]);
        assert_eq!(a.counts().registrations, 1);
        // Registered: the next store to the word hits in place.
        let (issue, acts) = a.store(WordAddr(0), 8);
        assert_eq!(issue, Issue::Hit(0));
        assert!(acts.is_empty());
        assert_eq!(a.counts().l1_store_hits, 1);
        assert!(a.quiesced());
        assert_eq!(a.owned_words(), vec![(WordAddr(0), 8)]);
    }

    #[test]
    fn registered_data_survives_acquire() {
        let mut a = l1_at(0);
        let mut l2 = l2_with(&[(16, 5)]);
        // Own word 0 (via store+release) and cache word 16 (via load).
        a.store(WordAddr(0), 1);
        let (_, acts) = a.release(false, ReqId(1));
        pump(&mut [&mut a], &mut l2, acts);
        let (_, acts) = a.load(WordAddr(16), Region::Default, ReqId(2));
        pump(&mut [&mut a], &mut l2, acts);
        a.acquire(false);
        // Valid word gone, Registered word kept.
        let (issue, _) = a.load(WordAddr(0), Region::Default, ReqId(3));
        assert_eq!(issue, Issue::Hit(1));
        let (issue, _) = a.load(WordAddr(16), Region::Default, ReqId(4));
        assert_eq!(issue, Issue::Pending);
        assert!(a.counts().words_invalidated >= 1);
    }

    #[test]
    fn read_only_region_survives_acquire_under_ddro() {
        let mut a = DnL1::new(DnConfig {
            read_only_region: true,
            ..DnConfig::micro15(NodeId(0))
        });
        let mut l2 = l2_with(&[(0, 11), (16, 22)]);
        let (_, acts) = a.load(WordAddr(0), Region::ReadOnly, ReqId(1));
        pump(&mut [&mut a], &mut l2, acts);
        let (_, acts) = a.load(WordAddr(16), Region::Default, ReqId(2));
        pump(&mut [&mut a], &mut l2, acts);
        a.acquire(false);
        let (issue, _) = a.load(WordAddr(0), Region::ReadOnly, ReqId(3));
        assert_eq!(issue, Issue::Hit(11), "read-only word survives");
        let (issue, _) = a.load(WordAddr(16), Region::Default, ReqId(4));
        assert_eq!(issue, Issue::Pending, "default-region word invalidated");
    }

    #[test]
    fn ro_annotation_ignored_without_the_enhancement() {
        let mut a = l1_at(0); // plain DD
        let mut l2 = l2_with(&[(0, 11)]);
        let (_, acts) = a.load(WordAddr(0), Region::ReadOnly, ReqId(1));
        pump(&mut [&mut a], &mut l2, acts);
        a.acquire(false);
        let (issue, _) = a.load(WordAddr(0), Region::ReadOnly, ReqId(2));
        assert_eq!(issue, Issue::Pending);
    }

    #[test]
    fn sync_atomic_registers_then_hits_for_whole_cu() {
        let mut a = l1_at(0);
        let mut l2 = l2_with(&[(0, 100)]);
        let (issue, acts) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(1));
        assert_eq!(issue, Issue::Pending);
        let done = pump(&mut [&mut a], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(1), 100)]);
        // Another thread block on the same CU: a pure L1 hit now.
        let (issue, acts) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(2));
        assert_eq!(issue, Issue::Hit(101));
        assert!(acts.is_empty());
        assert_eq!(a.counts().l1_atomic_hits, 1);
    }

    #[test]
    fn same_cu_sync_coalesces_in_mshr() {
        let mut a = l1_at(0);
        let mut l2 = l2_with(&[(0, 0)]);
        let (_, acts1) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(1));
        let (issue2, acts2) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(2));
        assert_eq!(issue2, Issue::Pending);
        assert!(acts2.is_empty(), "coalesced: one registration in flight");
        let done = pump(&mut [&mut a], &mut l2, acts1);
        assert_eq!(
            done,
            vec![Action::complete(ReqId(1), 0), Action::complete(ReqId(2), 1)]
        );
    }

    #[test]
    fn ownership_transfers_between_cus() {
        let mut a = l1_at(0);
        let mut b = l1_at(1);
        let mut l2 = l2_with(&[(0, 50)]);
        // CU0 registers the sync word.
        let (_, acts) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(1));
        pump(&mut [&mut a, &mut b], &mut l2, acts);
        // CU1 requests it: registry forwards to CU0, which transfers.
        let (issue, acts) = b.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(2));
        assert_eq!(issue, Issue::Pending);
        let done = pump(&mut [&mut a, &mut b], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(2), 51)]);
        assert_eq!(l2.counts().reg_forwards, 1);
        // CU0 no longer owns the word.
        assert!(a.owned_words().is_empty());
        assert_eq!(b.owned_words(), vec![(WordAddr(0), 52)]);
    }

    #[test]
    fn remote_read_forwarded_to_owner_keeps_ownership() {
        let mut a = l1_at(0);
        let mut b = l1_at(1);
        let mut l2 = l2_with(&[]);
        // CU0 owns word 0 with value 9 (store + release).
        a.store(WordAddr(0), 9);
        let (_, acts) = a.release(false, ReqId(1));
        pump(&mut [&mut a, &mut b], &mut l2, acts);
        // CU1 reads it: L2 forwards to CU0, extra hop, data arrives.
        let (issue, acts) = b.load(WordAddr(0), Region::Default, ReqId(2));
        assert_eq!(issue, Issue::Pending);
        let done = pump(&mut [&mut a, &mut b], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(2), 9)]);
        assert_eq!(a.owned_words(), vec![(WordAddr(0), 9)], "still the owner");
    }

    #[test]
    fn racy_registrations_queue_at_pending_owner() {
        // CU1's registration is granted but the grant is held back; CU2's
        // request forwards to CU1 and must queue in CU1's MSHR, and is
        // served only after CU1's own (coalesced) ops.
        let mut a = l1_at(1);
        let mut b = l1_at(2);
        let mut l2 = l2_with(&[(0, 0)]);
        let (_, acts_a) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(1));
        let (_, acts_a2) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(2));
        assert!(acts_a2.is_empty());
        // CU1's RegReq reaches the registry first...
        let Action::Send { msg: reg_a, .. } = acts_a[0] else {
            panic!()
        };
        let grant_a = l2.handle(0, &reg_a);
        // ...then CU2's, which forwards to CU1 (now the owner of record).
        let (_, acts_b) = b.atomic(WordAddr(0), AtomicOp::Add, [10, 0], false, ReqId(3));
        let Action::Send { msg: reg_b, .. } = acts_b[0] else {
            panic!()
        };
        let fwd_b = l2.handle(0, &reg_b);
        // Deliver the forward to CU1 BEFORE CU1's own grant: it queues.
        let mut fwd_actions = Vec::new();
        for f in &fwd_b {
            let Action::Send { msg, .. } = f else {
                panic!()
            };
            fwd_actions.extend(a.handle(msg));
        }
        assert!(fwd_actions.is_empty(), "forward queued, nothing served yet");
        assert_eq!(a.counts().reg_queued, 1);
        // Now CU1's grant lands: both local ops complete FIRST, then the
        // queued transfer releases to CU2, whose op completes last.
        let done = pump(&mut [&mut a, &mut b], &mut l2, grant_a);
        assert_eq!(
            done,
            vec![
                Action::complete(ReqId(1), 0),
                Action::complete(ReqId(2), 1),
                Action::complete(ReqId(3), 2),
            ]
        );
        assert_eq!(b.owned_words(), vec![(WordAddr(0), 12)]);
        assert!(a.owned_words().is_empty());
    }

    #[test]
    fn eviction_writes_back_ownership() {
        // A tiny 1-set x 2-way cache forces an eviction of owned data.
        let mut a = DnL1::new(DnConfig {
            l1: L1Config {
                geometry: gsim_mem::CacheGeometry {
                    size_bytes: 2 * gsim_types::LINE_BYTES,
                    ways: 2,
                },
                ..L1Config::micro15(NodeId(0))
            },
            read_only_region: false,
            delayed_local_ownership: false,
            sync_read_backoff: false,
        });
        let mut l2 = l2_with(&[]);
        // Own a word in each of 2 lines, then touch a third line.
        for line in 0..2u64 {
            a.store(LineAddr(line).word(0), line as Value + 1);
        }
        let (_, acts) = a.release(false, ReqId(1));
        pump(&mut [&mut a], &mut l2, acts);
        let (_, acts) = a.load(LineAddr(2).word(0), Region::Default, ReqId(2));
        let done = pump(&mut [&mut a], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(2), 0)]);
        assert_eq!(a.counts().ownership_writebacks, 1);
        // The written-back value is now at the L2, not lost.
        l2.flush_to_memory();
        let wb0 = l2.memory().read_word(WordAddr(0));
        let wb1 = l2.memory().read_word(LineAddr(1).word(0).addr().word());
        assert!(wb0 == 1 || wb1 == 2, "one of the two lines was evicted");
        assert!(a.quiesced());
    }

    #[test]
    fn registry_spills_owner_ids_across_bank_evictions() {
        let mut a = l1_at(0);
        let mut l2 = DnL2::new(
            L2Config {
                bank_geometry: gsim_mem::CacheGeometry {
                    size_bytes: 2 * gsim_types::LINE_BYTES,
                    ways: 2,
                },
                ..L2Config::default()
            },
            MemoryImage::new(),
        );
        // Own a word of line 0 (bank 0).
        a.store(WordAddr(0), 77);
        let (_, acts) = a.release(false, ReqId(1));
        pump(&mut [&mut a], &mut l2, acts);
        // Thrash bank 0 with other lines so line 0 is evicted.
        let mut b = l1_at(1);
        for k in 1..=2u64 {
            let line = LineAddr(k * 16); // all map to bank 0
            let (_, acts) = b.load(line.word(0), Region::Default, ReqId(10 + k));
            pump(&mut [&mut a, &mut b], &mut l2, acts);
        }
        assert!(l2.counts().registry_overflow_words >= 1);
        // A third CU can still find the owner through the overflow table.
        let mut c = l1_at(2);
        let (_, acts) = c.load(WordAddr(0), Region::Default, ReqId(20));
        let done = pump(&mut [&mut a, &mut b, &mut c], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(20), 77)]);
    }

    #[test]
    fn delayed_local_ownership_skips_registration() {
        let mut a = DnL1::new(DnConfig {
            delayed_local_ownership: true,
            ..DnConfig::micro15(NodeId(0))
        });
        let mut l2 = l2_with(&[(0, 5)]);
        // Local sync op: plain data fill, no registration.
        let (issue, acts) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], true, ReqId(1));
        assert_eq!(issue, Issue::Pending);
        let done = pump(&mut [&mut a], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(1), 5)]);
        assert_eq!(a.counts().registrations, 0);
        // The updated value is locally visible and hits.
        let (issue, _) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], true, ReqId(2));
        assert_eq!(issue, Issue::Hit(6));
        // A global release registers the buffered result.
        let (_, acts) = a.release(false, ReqId(3));
        let done = pump(&mut [&mut a], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(3), 0)]);
        assert_eq!(a.owned_words(), vec![(WordAddr(0), 7)]);
    }

    #[test]
    fn local_scope_skips_invalidate_and_flush() {
        let mut a = l1_at(0);
        let mut l2 = l2_with(&[(16, 9)]);
        let (_, acts) = a.load(WordAddr(16), Region::Default, ReqId(1));
        pump(&mut [&mut a], &mut l2, acts);
        a.store(WordAddr(0), 1);
        a.acquire(true);
        let (issue, acts) = a.release(true, ReqId(2));
        assert_eq!(issue, Issue::Hit(0));
        assert!(acts.is_empty());
        let (issue, _) = a.load(WordAddr(16), Region::Default, ReqId(3));
        assert_eq!(issue, Issue::Hit(9), "valid data survives local acquire");
        assert_eq!(
            a.counts().registrations,
            0,
            "local release registers nothing"
        );
    }

    #[test]
    fn partial_line_read_moves_only_useful_words() {
        // CU0 owns words 0..8 of a line; CU1 reads word 15: the L2
        // supplies what it has and only forwards the owned words.
        let mut a = l1_at(0);
        let mut b = l1_at(1);
        let mut l2 = l2_with(&[(15, 3)]);
        for i in 0..8 {
            a.store(WordAddr(i), i as Value);
        }
        let (_, acts) = a.release(false, ReqId(1));
        pump(&mut [&mut a, &mut b], &mut l2, acts);
        let (_, acts) = b.load(WordAddr(15), Region::Default, ReqId(2));
        // Inspect the response sizes: the L2's direct response covers the
        // 8 unowned words, the forward covers the 8 owned ones.
        let done = pump(&mut [&mut a, &mut b], &mut l2, acts);
        assert_eq!(done, vec![Action::complete(ReqId(2), 3)]);
        // CU1 now has the whole line readable (8 from L2 + 8 forwarded).
        for i in 0..8 {
            let (issue, _) = b.load(WordAddr(i), Region::Default, ReqId(10 + i));
            assert_eq!(issue, Issue::Hit(i as Value));
        }
    }

    #[test]
    #[should_panic(expected = "racy under DRF")]
    fn atomic_over_buffered_store_is_rejected() {
        let mut a = l1_at(0);
        a.store(WordAddr(0), 1);
        let _ = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(1));
    }

    #[test]
    fn sync_read_backoff_escalates_and_resets() {
        let mut a = DnL1::new(DnConfig {
            sync_read_backoff: true,
            ..DnConfig::micro15(NodeId(0))
        });
        let mut b = l1_at(1);
        let mut l2 = l2_with(&[(0, 0)]);
        fn read(l1: &mut DnL1, req: u64) -> (Issue, ActionVec) {
            l1.atomic(WordAddr(0), AtomicOp::Read, [0, 0], false, ReqId(req))
        }
        // CU0 registers the word via a sync read; CU1 steals it before
        // CU0 reuses it — read-read contention.
        let (_, acts) = read(&mut a, 1);
        pump(&mut [&mut a, &mut b], &mut l2, acts);
        let (_, acts) = read(&mut b, 2);
        pump(&mut [&mut a, &mut b], &mut l2, acts);
        // CU0's next read backs off once, then goes through.
        let (issue, _) = read(&mut a, 3);
        assert!(
            matches!(issue, Issue::RetryAfter(d) if d >= BACKOFF_BASE),
            "expected a backoff, got {issue:?}"
        );
        let (issue, acts) = read(&mut a, 3);
        assert_eq!(issue, Issue::Pending, "primed attempt issues");
        pump(&mut [&mut a, &mut b], &mut l2, acts);
        // A successful local reuse resets the backoff...
        let (issue, _) = read(&mut a, 4);
        assert_eq!(issue, Issue::Hit(0));
        // ...so a steal after a *productive* grant costs no backoff:
        // the next read registers immediately.
        let (_, acts) = read(&mut b, 5);
        pump(&mut [&mut a, &mut b], &mut l2, acts);
        let (issue, acts) = read(&mut a, 6);
        assert_eq!(issue, Issue::Pending, "no backoff after a reused grant");
        pump(&mut [&mut a, &mut b], &mut l2, acts);
    }

    #[test]
    fn backoff_disabled_by_default() {
        let mut a = l1_at(0);
        let mut b = l1_at(1);
        let mut l2 = l2_with(&[(0, 0)]);
        for round in 0..3u64 {
            let (_, acts) = a.atomic(WordAddr(0), AtomicOp::Read, [0, 0], false, ReqId(round * 2));
            pump(&mut [&mut a, &mut b], &mut l2, acts);
            let (_, acts) = b.atomic(
                WordAddr(0),
                AtomicOp::Read,
                [0, 0],
                false,
                ReqId(round * 2 + 1),
            );
            pump(&mut [&mut a, &mut b], &mut l2, acts);
        }
        // DeNovoSync0: never a backoff, always registration.
        let (issue, _) = a.atomic(WordAddr(0), AtomicOp::Read, [0, 0], false, ReqId(99));
        assert!(!matches!(issue, Issue::RetryAfter(_)));
    }

    #[test]
    fn retry_when_mshr_full() {
        let mut a = DnL1::new(DnConfig {
            l1: L1Config {
                mshr_entries: 1,
                ..L1Config::micro15(NodeId(0))
            },
            read_only_region: false,
            delayed_local_ownership: false,
            sync_read_backoff: false,
        });
        let (i1, _) = a.load(WordAddr(0), Region::Default, ReqId(1));
        assert_eq!(i1, Issue::Pending);
        let (i2, _) = a.load(LineAddr(1).word(0), Region::Default, ReqId(2));
        assert_eq!(i2, Issue::Retry);
        let (i3, _) = a.atomic(LineAddr(2).word(0), AtomicOp::Add, [1, 0], false, ReqId(3));
        assert_eq!(i3, Issue::Retry);
    }

    #[test]
    fn data_grant_beats_stale_read_fill() {
        // A read fill arriving after a word became Registered must not
        // downgrade it or clobber the registered value.
        let mut a = l1_at(0);
        let mut l2 = l2_with(&[(1, 111)]);
        // Start a read of word 1 (fetches the whole line) but hold the
        // response back.
        let (_, read_acts) = a.load(WordAddr(1), Region::Default, ReqId(1));
        let Action::Send { msg: read_req, .. } = read_acts[0] else {
            panic!()
        };
        let read_resp = l2.handle(0, &read_req);
        // Meanwhile word 0 is stored and registered.
        a.store(WordAddr(0), 42);
        let (_, rel_acts) = a.release(false, ReqId(2));
        pump(&mut [&mut a], &mut l2, rel_acts);
        assert_eq!(a.owned_words(), vec![(WordAddr(0), 42)]);
        // Now the stale read response lands.
        pump(&mut [&mut a], &mut l2, read_resp);
        assert_eq!(a.owned_words(), vec![(WordAddr(0), 42)], "not clobbered");
        let (issue, _) = a.load(WordAddr(0), Region::Default, ReqId(3));
        assert_eq!(issue, Issue::Hit(42));
    }
}
