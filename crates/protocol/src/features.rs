//! The paper's qualitative feature matrices: Table 2 (the four studied
//! configurations) and Table 5 (DeNovo-D against related GPU coherence
//! schemes).
//!
//! Each feature is answered *in code* from the corresponding protocol
//! mechanism so the printed tables stay honest: e.g.
//! [`Feature::ReuseWrittenData`] is `Full` exactly for the protocols
//! whose acquire keeps Registered words
//! ([`DnL1::acquire`](crate::DnL1::acquire)).

use gsim_types::ProtocolConfig;
use std::fmt;

/// The seven features of Table 2 (and the rows of Table 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Feature {
    /// Reuse written data across synchronization points.
    ReuseWrittenData,
    /// Reuse cached valid data across synchronization points.
    ReuseValidData,
    /// Avoid bursts of writes (no release-time writethrough storm).
    NoBurstyTraffic,
    /// No invalidation/acknowledgment protocol traffic.
    NoInvalidationAcks,
    /// Only transfer useful data (coherence/transfer granularity split).
    DecoupledGranularity,
    /// Efficient fine-grained synchronization (sync reuse in L1).
    ReuseSynchronization,
    /// Efficient dynamic sharing (work stealing).
    DynamicSharing,
}

impl Feature {
    /// All features in Table 2's row order.
    pub const ALL: [Feature; 7] = [
        Feature::ReuseWrittenData,
        Feature::ReuseValidData,
        Feature::NoBurstyTraffic,
        Feature::NoInvalidationAcks,
        Feature::DecoupledGranularity,
        Feature::ReuseSynchronization,
        Feature::DynamicSharing,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            Feature::ReuseWrittenData => "Reuse Written Data",
            Feature::ReuseValidData => "Reuse Valid Data",
            Feature::NoBurstyTraffic => "No Bursty Traffic",
            Feature::NoInvalidationAcks => "No Invalidations/ACKs",
            Feature::DecoupledGranularity => "Decoupled Granularity",
            Feature::ReuseSynchronization => "Reuse Synchronization",
            Feature::DynamicSharing => "Dynamic Sharing",
        }
    }
}

/// How well a configuration supports a feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Support {
    /// Unconditional support (a check mark in the paper).
    Full,
    /// Only for locally scoped synchronization (HRF configurations).
    IfLocalScope,
    /// Only for data in the software read-only region (DD+RO).
    IfReadOnly,
    /// Only for stores (Table 5's "for STs" qualifier).
    StoresOnly,
    /// Not supported (a cross in the paper).
    None,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Support::Full => write!(f, "yes"),
            Support::IfLocalScope => write!(f, "if local scope"),
            Support::IfReadOnly => write!(f, "if read-only"),
            Support::StoresOnly => write!(f, "for stores"),
            Support::None => write!(f, "no"),
        }
    }
}

impl Support {
    /// Answers one Table 2 cell for a studied configuration, derived from
    /// the protocol mechanisms implemented in this crate.
    pub fn of(config: ProtocolConfig, feature: Feature) -> Support {
        use gsim_types::Coherence::*;
        use ProtocolConfig::*;
        let denovo = config.coherence() == DeNovo;
        let scoped = config.honours_scopes();
        match feature {
            // Ownership keeps Registered words across acquires; GPU only
            // avoids the flush/invalidate inside a local scope.
            Feature::ReuseWrittenData | Feature::NoBurstyTraffic => {
                if denovo {
                    Support::Full
                } else if scoped {
                    Support::IfLocalScope
                } else {
                    Support::None
                }
            }
            // Valid (unwritten) data survives only local-scope acquires,
            // or the read-only region under DD+RO.
            Feature::ReuseValidData => match config {
                Gh | Dh => Support::IfLocalScope,
                DdRo => Support::IfReadOnly,
                Gd | Dd => Support::None,
            },
            // Neither family has writer-initiated invalidations or
            // sharer-ack storms (unlike MESI-style protocols, or the
            // broadcast invalidations of QuickRelease/RemoteScopes).
            Feature::NoInvalidationAcks => Support::Full,
            // Word-granularity state is DeNovo-only.
            Feature::DecoupledGranularity => {
                if denovo {
                    Support::Full
                } else {
                    Support::None
                }
            }
            // Sync variables hit in L1 once registered; GPU needs a
            // local scope to avoid the L2 round trip.
            Feature::ReuseSynchronization => {
                if denovo {
                    Support::Full
                } else if scoped {
                    Support::IfLocalScope
                } else {
                    Support::None
                }
            }
            // Dynamic sharing needs global visibility without a global
            // flush: only ownership provides it.
            Feature::DynamicSharing => {
                if denovo {
                    Support::Full
                } else {
                    Support::None
                }
            }
        }
    }
}

/// One column of Table 5: a related GPU coherence scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelatedScheme {
    /// Scheme name as cited by the paper.
    pub name: &'static str,
    /// Feature support in Table 5's row order ([`Feature::ALL`]).
    pub support: [Support; 7],
}

/// Table 5: DeNovo-D compared with HSC, Stash/TC/FC, QuickRelease, and
/// RemoteScopes. The DD column is computed from [`Support::of`], the
/// related-work columns are the paper's published assessment.
pub fn table5() -> [RelatedScheme; 5] {
    use Support::*;
    [
        RelatedScheme {
            name: "HSC",
            support: [Full, Full, Full, None, None, Full, Full],
        },
        RelatedScheme {
            name: "Stash/TC/FC",
            support: [Full, None, Full, Full, None, None, None],
        },
        RelatedScheme {
            name: "QuickRelease",
            support: [Full, None, Full, None, StoresOnly, None, None],
        },
        RelatedScheme {
            name: "RemoteScopes",
            support: [Full, None, Full, None, StoresOnly, Full, IfLocalScope],
        },
        RelatedScheme {
            name: "DD",
            support: {
                let mut s = [None; 7];
                for (i, f) in Feature::ALL.iter().enumerate() {
                    s[i] = Support::of(ProtocolConfig::Dd, *f);
                }
                s
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper_row_by_row() {
        use ProtocolConfig::*;
        use Support::*;
        // Reuse Written Data: x, if-local, yes, yes.
        assert_eq!(Support::of(Gd, Feature::ReuseWrittenData), None);
        assert_eq!(Support::of(Gh, Feature::ReuseWrittenData), IfLocalScope);
        assert_eq!(Support::of(Dd, Feature::ReuseWrittenData), Full);
        assert_eq!(Support::of(Dh, Feature::ReuseWrittenData), Full);
        // Reuse Valid Data: x, if-local, x (mitigated by RO), if-local.
        assert_eq!(Support::of(Gd, Feature::ReuseValidData), None);
        assert_eq!(Support::of(Gh, Feature::ReuseValidData), IfLocalScope);
        assert_eq!(Support::of(Dd, Feature::ReuseValidData), None);
        assert_eq!(Support::of(DdRo, Feature::ReuseValidData), IfReadOnly);
        assert_eq!(Support::of(Dh, Feature::ReuseValidData), IfLocalScope);
        // No Invalidations/ACKs: every studied configuration (the row
        // distinguishes them from MESI-style writer invalidation).
        assert_eq!(Support::of(Gd, Feature::NoInvalidationAcks), Full);
        assert_eq!(Support::of(Dd, Feature::NoInvalidationAcks), Full);
        // Decoupled granularity and dynamic sharing: DeNovo only.
        for c in [Gd, Gh] {
            assert_eq!(Support::of(c, Feature::DecoupledGranularity), None);
            assert_eq!(Support::of(c, Feature::DynamicSharing), None);
        }
        for c in [Dd, DdRo, Dh] {
            assert_eq!(Support::of(c, Feature::DecoupledGranularity), Full);
            assert_eq!(Support::of(c, Feature::DynamicSharing), Full);
        }
    }

    #[test]
    fn dd_dominates_table5_feature_count() {
        let t = table5();
        let full_count =
            |s: &RelatedScheme| s.support.iter().filter(|x| **x == Support::Full).count();
        let dd = t.iter().find(|s| s.name == "DD").unwrap();
        // The paper's point: no related scheme provides all of DD's
        // benefits. DD is full on 6 of 7 features, more than any other.
        assert_eq!(full_count(dd), 6);
        for s in &t {
            if s.name != "DD" {
                assert!(full_count(s) < full_count(dd), "{} >= DD", s.name);
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Feature::ALL.len(), 7);
        for f in Feature::ALL {
            assert!(!f.label().is_empty());
        }
        assert_eq!(Support::IfLocalScope.to_string(), "if local scope");
    }
}
