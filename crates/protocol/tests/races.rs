//! Race-window tests: drive the controllers through the message
//! interleavings that broke earlier designs (see DESIGN.md §5b), holding
//! messages back and delivering them out of the convenient order.

use gsim_mem::MemoryImage;
use gsim_protocol::denovo::DnConfig;
use gsim_protocol::{Action, DnL1, DnL2, GpuL1, GpuL2, Issue, L1Config, L2Config};
use gsim_types::{
    AtomicOp, Component, LineAddr, Msg, NodeId, Region, ReqId, SyncOrd, Value, WordAddr,
};

/// Extracts the sent messages from an action list.
fn sends(actions: &[Action]) -> Vec<Msg> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send { msg, .. } => Some(*msg),
            _ => None,
        })
        .collect()
}

/// Drives every send to quiescence, breadth first.
fn pump_gpu(
    l1: &mut GpuL1,
    l2: &mut GpuL2,
    actions: impl IntoIterator<Item = Action>,
) -> Vec<(ReqId, Value)> {
    let mut queue: std::collections::VecDeque<Action> = actions.into_iter().collect();
    let mut done = Vec::new();
    while let Some(a) = queue.pop_front() {
        match a {
            Action::Send { msg, .. } => {
                let replies = match msg.dst_comp {
                    Component::L2 => l2.handle(0, &msg),
                    Component::L1 => l1.handle(&msg),
                };
                queue.extend(replies);
            }
            Action::Complete { req, value, .. } => done.push((req, value)),
        }
    }
    done
}

fn pump_dn(
    l1s: &mut [&mut DnL1],
    l2: &mut DnL2,
    actions: impl IntoIterator<Item = Action>,
) -> Vec<(ReqId, Value)> {
    let mut queue: std::collections::VecDeque<Action> = actions.into_iter().collect();
    let mut done = Vec::new();
    while let Some(a) = queue.pop_front() {
        match a {
            Action::Send { msg, .. } => {
                let replies = match msg.dst_comp {
                    Component::L2 => l2.handle(0, &msg),
                    Component::L1 => l1s
                        .iter_mut()
                        .find(|l| l.node() == msg.dst)
                        .expect("known L1")
                        .handle(&msg),
                };
                queue.extend(replies);
            }
            Action::Complete { req, value, .. } => done.push((req, value)),
        }
    }
    done
}

/// GPU: a fill that raced past an overflow writethrough must not
/// resurrect the pre-store value (the bug the differential tests found).
#[test]
fn gpu_fill_does_not_resurrect_flushed_store() {
    let mut l1 = GpuL1::new(L1Config {
        sb_entries: 1, // force immediate overflow on the second line
        ..L1Config::micro15(NodeId(3))
    });
    let mut l2 = GpuL2::new(L2Config::default(), MemoryImage::new());
    // 1. A load of line 0 goes out; hold the response.
    let (issue, acts) = l1.load(WordAddr(5), ReqId(1));
    assert_eq!(issue, Issue::Pending);
    let read_req = sends(&acts)[0];
    let held_fill = l2.handle(0, &read_req);
    // 2. Store to word 5 of the same line, then overflow it out of the
    //    tiny store buffer by storing to another line.
    l1.store(WordAddr(5), 777);
    let (_, acts) = l1.store(LineAddr(9).word(0), 1);
    let wt = sends(&acts);
    assert_eq!(wt.len(), 1, "line 0 written through on overflow");
    // 3. The writethrough reaches the L2 AFTER the held fill was
    //    generated. On the bank-to-L1 path the fill precedes the ack
    //    (in-order bank + FIFO links), so deliver in that order: the
    //    stale fill first, while the writethrough is still unacked.
    let done = pump_gpu(&mut l1, &mut l2, held_fill);
    assert_eq!(done.len(), 1, "the blocked load completes");
    let acks = l2.handle(0, &wt[0]);
    pump_gpu(&mut l1, &mut l2, acks);
    // 4. The word must NOT read stale: either it re-misses (squashed) or
    //    it reads 777 — never the pre-store zero.
    let (issue, acts) = l1.load(WordAddr(5), ReqId(2));
    match issue {
        Issue::Hit(v) => assert_eq!(v, 777, "stale value resurrected by the fill"),
        Issue::Pending => {
            let done = pump_gpu(&mut l1, &mut l2, acts);
            assert_eq!(done, vec![(ReqId(2), 777)]);
        }
        Issue::Retry | Issue::RetryAfter(_) => panic!("unexpected retry"),
    }
}

/// GPU: a fill requested before an acquire must not install data that a
/// post-acquire load could hit (the epoch squash).
#[test]
fn gpu_preacquire_fill_does_not_serve_postacquire_loads() {
    let mut l1 = GpuL1::new(L1Config::micro15(NodeId(0)));
    let mut mem = MemoryImage::new();
    mem.write_word(WordAddr(0), 1);
    let mut l2 = GpuL2::new(L2Config::default(), mem);
    // 1. Load word 0; hold the fill.
    let (_, acts) = l1.load(WordAddr(0), ReqId(1));
    let held_fill = l2.handle(0, &sends(&acts)[0]);
    // 2. Another CU updates word 0 at the L2 (atomic write) and our CU
    //    acquires.
    let update = Msg {
        src: NodeId(5),
        dst: NodeId(0),
        dst_comp: Component::L2,
        kind: gsim_types::MsgKind::AtomicReq {
            word: WordAddr(0),
            op: AtomicOp::Write,
            operands: [2, 0],
            ord: SyncOrd::Release,
            scope: gsim_types::Scope::Global,
            requester: NodeId(5),
        },
    };
    let _ = l2.handle(0, &update);
    l1.acquire(false);
    // 3. A post-acquire load must not coalesce with the stale entry.
    let (issue, _) = l1.load(WordAddr(0), ReqId(2));
    assert_eq!(
        issue,
        Issue::Retry,
        "post-acquire load must wait, not coalesce"
    );
    // 4. The stale fill arrives: the pre-acquire load completes (any
    //    value is legal for it), nothing is installed.
    let done = pump_gpu(&mut l1, &mut l2, held_fill);
    assert_eq!(done.len(), 1);
    // 5. The retried load now fetches fresh data.
    let (issue, acts) = l1.load(WordAddr(0), ReqId(3));
    assert_eq!(issue, Issue::Pending);
    let done = pump_gpu(&mut l1, &mut l2, acts);
    assert_eq!(
        done,
        vec![(ReqId(3), 2)],
        "post-acquire load sees the release"
    );
    assert!(l1.quiesced());
}

/// DeNovo: same epoch rule for read fills.
#[test]
fn denovo_preacquire_fill_does_not_install() {
    let mut a = DnL1::new(DnConfig::micro15(NodeId(0)));
    let mut mem = MemoryImage::new();
    mem.write_word(WordAddr(0), 10);
    let mut l2 = DnL2::new(L2Config::default(), mem);
    let (_, acts) = a.load(WordAddr(0), Region::Default, ReqId(1));
    let held = l2.handle(0, &sends(&acts)[0]);
    a.acquire(false);
    let (issue, _) = a.load(WordAddr(0), Region::Default, ReqId(2));
    assert_eq!(issue, Issue::Retry);
    let done = pump_dn(&mut [&mut a], &mut l2, held);
    assert_eq!(done.len(), 1, "pre-acquire load served");
    // Post-acquire load re-fetches (nothing was installed).
    let (issue, acts) = a.load(WordAddr(0), Region::Default, ReqId(3));
    assert_eq!(issue, Issue::Pending);
    let done = pump_dn(&mut [&mut a], &mut l2, acts);
    assert_eq!(done, vec![(ReqId(3), 10)]);
    assert!(a.quiesced());
}

/// DeNovo: registration grants DO install across an acquire — ownership
/// data is fresh by construction, and the sync op must not deadlock.
#[test]
fn denovo_sync_grant_survives_acquire_window() {
    let mut a = DnL1::new(DnConfig::micro15(NodeId(0)));
    let mut l2 = DnL2::new(L2Config::default(), MemoryImage::new());
    let (issue, acts) = a.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(1));
    assert_eq!(issue, Issue::Pending);
    let held_grant = l2.handle(0, &sends(&acts)[0]);
    // An unrelated acquire (another thread block's) lands first.
    a.acquire(false);
    let done = pump_dn(&mut [&mut a], &mut l2, held_grant);
    assert_eq!(
        done,
        vec![(ReqId(1), 0)],
        "grant still completes the sync op"
    );
    assert_eq!(
        a.owned_words(),
        vec![(WordAddr(0), 1)],
        "ownership installed"
    );
}

/// DeNovo: eviction writeback racing with a registration forward — the
/// forward is served from the in-flight writeback data and the stale
/// writeback is ignored at the registry.
#[test]
fn denovo_forward_served_from_inflight_writeback() {
    // Tiny cache: 1 set x 2 ways forces the eviction.
    let mut a = DnL1::new(DnConfig {
        l1: L1Config {
            geometry: gsim_mem::CacheGeometry {
                size_bytes: 2 * gsim_types::LINE_BYTES,
                ways: 2,
            },
            ..L1Config::micro15(NodeId(0))
        },
        read_only_region: false,
        delayed_local_ownership: false,
        sync_read_backoff: false,
    });
    let mut b = DnL1::new(DnConfig::micro15(NodeId(1)));
    let mut l2 = DnL2::new(L2Config::default(), MemoryImage::new());
    // CU0 owns a word in each of the two ways of set 0 (victim selection
    // prefers unowned lines, so both must be owned to force an owned
    // eviction).
    a.store(WordAddr(0), 42);
    a.store(LineAddr(1).word(0), 9);
    let (_, acts) = a.release(false, ReqId(1));
    pump_dn(&mut [&mut a, &mut b], &mut l2, acts);
    // Load line 2: line 0 (LRU) is evicted at fill time. Intercept the
    // fill delivery by hand so the WbReq can be held back.
    let (_, acts) = a.load(LineAddr(2).word(0), Region::Default, ReqId(10));
    let fill = l2.handle(0, &sends(&acts)[0]);
    let mut held_wb = Vec::new();
    for act in fill {
        let Action::Send { msg, .. } = act else {
            continue;
        };
        let replies = a.handle(&msg);
        for r in replies {
            let Action::Send { msg, .. } = r else {
                continue;
            };
            assert!(
                matches!(msg.kind, gsim_types::MsgKind::WbReq { .. }),
                "only the eviction writeback is expected here"
            );
            held_wb.push(msg);
        }
    }
    assert_eq!(held_wb.len(), 1, "one eviction writeback in flight");
    // CU1 registers word 0: the registry still thinks CU0 owns it and
    // forwards; CU0 must serve the transfer from the in-flight writeback.
    let (issue, acts) = b.atomic(WordAddr(0), AtomicOp::Add, [1, 0], false, ReqId(2));
    assert_eq!(issue, Issue::Pending);
    let done = pump_dn(&mut [&mut a, &mut b], &mut l2, acts);
    assert_eq!(
        done,
        vec![(ReqId(2), 42)],
        "value came from the writeback data"
    );
    assert_eq!(b.owned_words(), vec![(WordAddr(0), 43)]);
    // The stale writeback finally lands at the registry and is ignored.
    let acks = l2.handle(0, &held_wb[0]);
    pump_dn(&mut [&mut a, &mut b], &mut l2, acks);
    assert!(a.quiesced());
    // CU1 still owns the word with the fresh value.
    assert_eq!(b.owned_words(), vec![(WordAddr(0), 43)]);
}

/// GPU: same-word atomics from one L1 complete in issue order even when
/// the first misses to DRAM at the bank and the second hits — the
/// in-order bank pipeline the deadlocking semaphore exposed.
#[test]
fn gpu_bank_keeps_atomic_responses_in_order() {
    let mut l1 = GpuL1::new(L1Config::micro15(NodeId(0)));
    let mut l2 = GpuL2::new(L2Config::default(), MemoryImage::new());
    let (_, a1) = l1.atomic(
        WordAddr(0),
        AtomicOp::Add,
        [1, 0],
        SyncOrd::AcqRel,
        false,
        ReqId(1),
    );
    let (_, a2) = l1.atomic(
        WordAddr(0),
        AtomicOp::Add,
        [1, 0],
        SyncOrd::AcqRel,
        false,
        ReqId(2),
    );
    // Deliver both requests to the bank in order; the first misses to
    // DRAM, the second hits. The bank must emit the responses with
    // non-decreasing delays.
    let r1 = l2.handle(0, &sends(&a1)[0]);
    let r2 = l2.handle(0, &sends(&a2)[0]);
    let d1 = match r1[0] {
        Action::Send { delay, .. } => delay,
        _ => panic!(),
    };
    let d2 = match r2[0] {
        Action::Send { delay, .. } => delay,
        _ => panic!(),
    };
    assert!(
        d2 > d1,
        "bank hit (delay {d2}) must not overtake the DRAM miss (delay {d1})"
    );
    // And the completions carry the right old values, in order.
    assert_eq!(pump_gpu(&mut l1, &mut l2, r1), vec![(ReqId(1), 0)]);
    assert_eq!(pump_gpu(&mut l1, &mut l2, r2), vec![(ReqId(2), 1)]);
}

/// DeNovo: a store to a word whose line has a read in flight still
/// registers at release and wins over the late fill.
#[test]
fn denovo_registration_beats_inflight_read() {
    let mut a = DnL1::new(DnConfig::micro15(NodeId(0)));
    let mut mem = MemoryImage::new();
    mem.write_word(WordAddr(1), 111);
    let mut l2 = DnL2::new(L2Config::default(), mem);
    // Read word 1 (fetches the line incl. word 0); hold the fill.
    let (_, acts) = a.load(WordAddr(1), Region::Default, ReqId(1));
    let held = l2.handle(0, &sends(&acts)[0]);
    // Store to word 0 and release: registration must go out even though
    // a read of the same line is pending.
    a.store(WordAddr(0), 5);
    let (issue, acts) = a.release(false, ReqId(2));
    assert_eq!(issue, Issue::Pending);
    let done = pump_dn(&mut [&mut a], &mut l2, acts);
    assert_eq!(done, vec![(ReqId(2), 0)], "release completes via the grant");
    assert_eq!(a.owned_words(), vec![(WordAddr(0), 5)]);
    // The held read fill lands late: must not clobber the owned word.
    let done = pump_dn(&mut [&mut a], &mut l2, held);
    assert_eq!(done, vec![(ReqId(1), 111)]);
    assert_eq!(a.owned_words(), vec![(WordAddr(0), 5)], "not clobbered");
}
