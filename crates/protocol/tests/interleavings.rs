//! Randomized interleaving exploration of the coherence protocols.
//!
//! The simulation engine delivers messages in one deterministic order per
//! run; this harness instead explores *many* delivery orders directly at
//! the controller level. The only constraint it preserves is the one the
//! real system guarantees — per-(source, destination) FIFO — and within
//! that it picks the next deliverable message at random (seeded).
//!
//! Under every explored order, the protocol invariants must hold: atomic
//! read-modify-writes on one word must linearize (sum conservation and
//! per-L1 completion order), ownership must end up in exactly one place,
//! and every request must complete. This drives DeNovoSync0's
//! registration forwarding and distributed queueing through interleavings
//! far stranger than any single timed run produces.

use gsim_mem::MemoryImage;
use gsim_protocol::denovo::DnConfig;
use gsim_protocol::{Action, DnL1, DnL2, GpuL1, GpuL2, Issue, L1Config, L2Config};
use gsim_types::{AtomicOp, Component, Msg, NodeId, ReqId, Rng64, SyncOrd, Value, WordAddr};
use std::collections::VecDeque;

/// An in-flight message network preserving per-channel FIFO but
/// otherwise delivering in the order a seeded RNG picks.
struct ChaosNet {
    /// One FIFO per (src, dst) channel.
    channels: Vec<((NodeId, NodeId), VecDeque<Msg>)>,
    rng: Rng64,
}

impl ChaosNet {
    fn new(seed: u64) -> Self {
        ChaosNet {
            channels: Vec::new(),
            rng: Rng64::seed_from_u64(seed),
        }
    }

    fn push(&mut self, msg: Msg) {
        let key = (msg.src, msg.dst);
        if let Some((_, q)) = self.channels.iter_mut().find(|(k, _)| *k == key) {
            q.push_back(msg);
        } else {
            self.channels.push((key, VecDeque::from([msg])));
        }
    }

    fn push_actions(
        &mut self,
        actions: impl IntoIterator<Item = Action>,
        done: &mut Vec<(ReqId, Value)>,
    ) {
        for a in actions {
            match a {
                Action::Send { msg, .. } => self.push(msg),
                Action::Complete { req, value, .. } => done.push((req, value)),
            }
        }
    }

    /// Pops the head of a randomly chosen non-empty channel.
    fn pop(&mut self) -> Option<Msg> {
        self.channels.retain(|(_, q)| !q.is_empty());
        if self.channels.is_empty() {
            return None;
        }
        let i = self.rng.gen_usize(0, self.channels.len());
        self.channels[i].1.pop_front()
    }
}

/// Runs the DeNovo system to quiescence under one random delivery order.
fn pump_denovo(
    net: &mut ChaosNet,
    l1s: &mut [DnL1],
    l2: &mut DnL2,
    done: &mut Vec<(ReqId, Value)>,
) {
    while let Some(msg) = net.pop() {
        let replies = match msg.dst_comp {
            Component::L2 => l2.handle(0, &msg),
            Component::L1 => l1s
                .iter_mut()
                .find(|l| l.node() == msg.dst)
                .expect("known L1")
                .handle(&msg),
        };
        net.push_actions(replies, done);
    }
}

fn pump_gpu(net: &mut ChaosNet, l1s: &mut [GpuL1], l2: &mut GpuL2, done: &mut Vec<(ReqId, Value)>) {
    while let Some(msg) = net.pop() {
        let replies = match msg.dst_comp {
            Component::L2 => l2.handle(0, &msg),
            Component::L1 => l1s
                .iter_mut()
                .find(|l| l.node() == msg.dst)
                .expect("known L1")
                .handle(&msg),
        };
        net.push_actions(replies, done);
    }
}

/// The core DeNovoSync0 scenario: many L1s issue fetch-and-adds on one
/// word, all requests in flight at once, delivered chaotically.
fn denovo_racy_adds(seed: u64, n_l1s: usize, adds_per_l1: usize) {
    let mut l1s: Vec<DnL1> = (0..n_l1s as u8)
        .map(|i| DnL1::new(DnConfig::micro15(NodeId(i))))
        .collect();
    let mut l2 = DnL2::new(L2Config::default(), MemoryImage::new());
    let mut net = ChaosNet::new(seed);
    let mut done = Vec::new();
    let word = WordAddr(5);

    let mut expected_reqs = Vec::new();
    let mut req = 0u64;
    for round in 0..adds_per_l1 {
        for l1 in l1s.iter_mut() {
            req += 1;
            let (issue, actions) = l1.atomic(word, AtomicOp::Add, [1, 0], false, ReqId(req));
            expected_reqs.push(ReqId(req));
            match issue {
                Issue::Hit(_) => done.push((ReqId(req), u32::MAX)), // value checked via sum
                Issue::Pending => {}
                other => panic!("round {round}: unexpected {other:?}"),
            }
            net.push_actions(actions, &mut done);
        }
        // Interleave deliveries between issue rounds too.
        for _ in 0..3 {
            if let Some(msg) = net.pop() {
                let replies = match msg.dst_comp {
                    Component::L2 => l2.handle(0, &msg),
                    Component::L1 => l1s
                        .iter_mut()
                        .find(|l| l.node() == msg.dst)
                        .expect("known L1")
                        .handle(&msg),
                };
                net.push_actions(replies, &mut done);
            }
        }
    }
    pump_denovo(&mut net, &mut l1s, &mut l2, &mut done);

    // Every request completed exactly once.
    assert_eq!(
        done.len(),
        expected_reqs.len(),
        "lost or duplicated completions"
    );
    // Exactly one L1 owns the word, holding the full sum.
    let total = (n_l1s * adds_per_l1) as u32;
    let owners: Vec<_> = l1s
        .iter()
        .flat_map(|l| l.owned_words())
        .filter(|(w, _)| *w == word)
        .collect();
    assert_eq!(owners.len(), 1, "exactly one owner at quiescence");
    assert_eq!(
        owners[0].1, total,
        "no increment lost under any interleaving"
    );
    for l in &l1s {
        assert!(l.quiesced(), "L1 {} left residue", l.node());
    }
}

/// The GPU analogue: racy L2 atomics with chaotic delivery.
fn gpu_racy_adds(seed: u64, n_l1s: usize, adds_per_l1: usize) {
    let mut l1s: Vec<GpuL1> = (0..n_l1s as u8)
        .map(|i| GpuL1::new(L1Config::micro15(NodeId(i))))
        .collect();
    let mut l2 = GpuL2::new(L2Config::default(), MemoryImage::new());
    let mut net = ChaosNet::new(seed);
    let mut done = Vec::new();
    let word = WordAddr(5);

    let mut issued = 0usize;
    let mut req = 0u64;
    for _ in 0..adds_per_l1 {
        for l1 in l1s.iter_mut() {
            req += 1;
            let (issue, actions) = l1.atomic(
                word,
                AtomicOp::Add,
                [1, 0],
                SyncOrd::AcqRel,
                false,
                ReqId(req),
            );
            assert_eq!(issue, Issue::Pending);
            issued += 1;
            net.push_actions(actions, &mut done);
        }
    }
    pump_gpu(&mut net, &mut l1s, &mut l2, &mut done);
    assert_eq!(done.len(), issued);
    l2.flush_to_memory();
    assert_eq!(
        l2.memory().read_word(word),
        (n_l1s * adds_per_l1) as u32,
        "sum conserved at the L2"
    );
    for l in &l1s {
        assert!(l.quiesced());
    }
}

/// Derives 24 (seed, n_l1s, adds) cases from a master seed — the
/// offline replacement for the old proptest generators; every case is
/// deterministic and reproducible from the printed parameters.
fn explore(master: u64, f: impl Fn(u64, usize, usize)) {
    let mut rng = Rng64::seed_from_u64(master);
    for case in 0..24 {
        let seed = rng.next_u64();
        let n_l1s = rng.gen_usize(2, 8);
        let adds = rng.gen_usize(1, 6);
        eprintln!("case {case}: seed={seed:#x} n_l1s={n_l1s} adds={adds}");
        f(seed, n_l1s, adds);
    }
}

#[test]
fn denovo_sync_linearizes_under_any_interleaving() {
    explore(0xde0, denovo_racy_adds);
}

#[test]
fn gpu_atomics_linearize_under_any_interleaving() {
    explore(0x6b0, gpu_racy_adds);
}

/// A deterministic heavy case for the plain test run.
#[test]
fn denovo_fifteen_way_contention() {
    denovo_racy_adds(0x1234, 15, 8);
}

#[test]
fn gpu_fifteen_way_contention() {
    gpu_racy_adds(0x1234, 15, 8);
}
