#![warn(missing_docs)]

//! Schedule exploration for the litmus battery: stateless model
//! checking over the engine's same-cycle event orderings.
//!
//! The deterministic engine pops events in `(cycle, seq)` order, so a
//! cycle whose bucket holds two or more events hides an arbitration
//! choice: which same-cycle event the hardware would service first. The
//! controlled event queue (`QueueKind::Controlled`) exposes each such
//! bucket as a *decision point*, and this crate drives a DFS over
//! *schedule prefixes* — vectors of per-decision choices, where every
//! index past the prefix defaults to choice 0 — to enumerate the
//! outcomes a litmus shape can reach under **every** same-cycle
//! ordering, not just the production one.
//!
//! Three modes, strictly ordered by how much they prune:
//!
//! * [`ExploreMode::Naive`] branches every alternative at every
//!   decision — the ground-truth interleaving tree, exponential but
//!   exact, never consulting footprints. Tests use it to
//!   differentially validate both pruned modes.
//! * [`ExploreMode::Sleep`] adds sleep sets: a sibling already
//!   explored at a decision stays asleep in later-branched siblings
//!   until an event conflicting with it executes, collapsing the
//!   diamonds that independent same-cycle events open up.
//! * [`ExploreMode::Dpor`] adds dynamic partial-order reduction:
//!   an alternative is branched only if its [`Footprint`] conflicts
//!   with the chosen event's (same-cycle events with disjoint
//!   footprints commute, so swapping them alone cannot change the
//!   final state).
//!
//! Every run is named by a replayable [`ScheduleId`] — a sparse
//! encoding of its nonzero choices — so any explored outcome can be
//! reproduced exactly, byte-identical statistics included, from the id
//! alone.
//!
//! The enumeration is *honest about its limits*: a [`Budget`] caps the
//! number of schedules executed, and [`ShapeReport`] carries the
//! `truncated` flag plus the unexplored frontier size, so "explored N
//! schedules" can never silently mean "explored N of 10 000".

use std::collections::BTreeMap;
use std::fmt;

use gsim_check::CheckLevel;
use gsim_core::{ExploredRun, Footprint, SimError, Simulator, SystemConfig};
use gsim_types::{ProtocolConfig, WordAddr};
use gsim_workloads::litmus::{Litmus, OutcomeSpec};

/// Which pruning discipline the DFS applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExploreMode {
    /// Branch every alternative at every decision point, no pruning of
    /// any kind. Exponential; the differential ground truth the other
    /// modes are validated against (it never consults footprints, so it
    /// cannot inherit a bug in the conflict relation).
    Naive,
    /// Branch every alternative, but suppress siblings the sleep set
    /// proves redundant: an alternative already explored at this
    /// decision stays asleep in later-branched siblings until an event
    /// whose footprint conflicts with it executes. Prunes the
    /// independent-event diamonds that dominate naive's tree.
    Sleep,
    /// [`Sleep`](ExploreMode::Sleep) plus dynamic partial-order
    /// reduction: branch only alternatives whose footprint conflicts
    /// with the chosen event's. Sound for outcome enumeration because
    /// disjoint-footprint same-cycle events commute (see `DESIGN.md`
    /// §7h for the one documented approximation, NoC link arbitration).
    Dpor,
}

impl ExploreMode {
    fn sleeps(self) -> bool {
        self != ExploreMode::Naive
    }
}

impl fmt::Display for ExploreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExploreMode::Naive => "naive",
            ExploreMode::Sleep => "sleep",
            ExploreMode::Dpor => "dpor",
        })
    }
}

/// Caps on the DFS, so exploration terminates on shapes whose
/// interleaving tree is large.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of schedules (complete runs) to execute.
    pub max_schedules: u64,
    /// Maximum prefix length to branch from; decisions deeper than
    /// this keep their default choice. `usize::MAX` = unbounded.
    pub max_depth: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_schedules: 4096,
            max_depth: usize::MAX,
        }
    }
}

impl Budget {
    /// A budget capped at `max_schedules` runs, depth unbounded.
    pub fn schedules(max_schedules: u64) -> Self {
        Budget {
            max_schedules,
            ..Budget::default()
        }
    }
}

/// A compact, replayable name for one explored schedule: the nonzero
/// entries of its choice prefix.
///
/// The identity schedule (every decision takes choice 0 — exactly the
/// production `(cycle, seq)` order) renders as `"r"`. Any other
/// schedule renders its nonzero choices as `index.choice` pairs joined
/// by `-`, e.g. `"3.1-7.2"`: decision 3 took alternative 1, decision 7
/// took alternative 2, every other decision took the default.
///
/// # Examples
///
/// ```
/// use gsim_explore::ScheduleId;
///
/// let id = ScheduleId::from_prefix(&[0, 0, 1, 0, 2]);
/// assert_eq!(id.to_string(), "2.1-4.2");
/// assert_eq!(ScheduleId::parse("2.1-4.2").unwrap(), id);
/// assert_eq!(id.prefix(), &[0, 0, 1, 0, 2]);
/// assert_eq!(ScheduleId::root().to_string(), "r");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ScheduleId(Vec<u32>);

impl ScheduleId {
    /// The identity schedule: every decision takes choice 0.
    pub fn root() -> Self {
        ScheduleId(Vec::new())
    }

    /// Builds an id from a choice prefix, trimming trailing defaults
    /// so equal schedules get equal ids.
    pub fn from_prefix(prefix: &[u32]) -> Self {
        let len = prefix.len() - prefix.iter().rev().take_while(|&&c| c == 0).count();
        ScheduleId(prefix[..len].to_vec())
    }

    /// The choice prefix to force when replaying this schedule.
    pub fn prefix(&self) -> &[u32] {
        &self.0
    }

    /// Parses the [`Display`](fmt::Display) form back into an id.
    ///
    /// # Errors
    ///
    /// A description of the malformed pair on any input this crate
    /// would not itself print (bad number, zero choice, out-of-order
    /// or duplicate indices).
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "r" {
            return Ok(ScheduleId::root());
        }
        let mut prefix: Vec<u32> = Vec::new();
        for pair in s.split('-') {
            let (idx, choice) = pair
                .split_once('.')
                .ok_or_else(|| format!("schedule id pair `{pair}` is not `index.choice`"))?;
            let idx: usize = idx
                .parse()
                .map_err(|_| format!("schedule id `{pair}`: bad decision index"))?;
            let choice: u32 = choice
                .parse()
                .map_err(|_| format!("schedule id `{pair}`: bad choice"))?;
            if choice == 0 {
                return Err(format!(
                    "schedule id `{pair}`: choice 0 is the default and is never written"
                ));
            }
            if idx < prefix.len() {
                return Err(format!(
                    "schedule id `{pair}`: decision indices must be strictly increasing"
                ));
            }
            prefix.resize(idx, 0);
            prefix.push(choice);
        }
        Ok(ScheduleId(prefix))
    }
}

impl fmt::Display for ScheduleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("r");
        }
        let mut first = true;
        for (i, &c) in self.0.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                f.write_str("-")?;
            }
            write!(f, "{i}.{c}")?;
            first = false;
        }
        Ok(())
    }
}

/// One distinct final-state tuple reached during exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutcomeRow {
    /// The observed values of the shape's observation words.
    pub tuple: Vec<u32>,
    /// How many explored schedules produced this tuple.
    pub schedules: u64,
    /// The first schedule that produced it — replay this id to
    /// reproduce the outcome deterministically.
    pub witness: ScheduleId,
    /// Whether the shape's spec declares the tuple reachable.
    pub allowed: bool,
    /// Whether the spec explicitly names the tuple as model-forbidden.
    pub forbidden: bool,
}

/// A run that failed (watchdog, verifier, or conformance check),
/// pinned to the schedule that provoked it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The failing schedule.
    pub id: ScheduleId,
    /// The rendered [`SimError`].
    pub error: String,
}

/// The result of exploring one shape under one configuration.
#[derive(Clone, Debug)]
pub struct ShapeReport {
    /// The shape's stable name.
    pub shape: &'static str,
    /// The configuration explored under.
    pub config: ProtocolConfig,
    /// The pruning mode used.
    pub mode: ExploreMode,
    /// Distinct outcomes, in tuple order, each with a replay witness.
    pub outcomes: Vec<OutcomeRow>,
    /// Schedules actually executed.
    pub explored: u64,
    /// Alternatives skipped because their footprint does not conflict
    /// with the chosen event's (DPOR independence).
    pub pruned_indep: u64,
    /// Alternatives skipped by the sleep set (already explored at this
    /// decision, no conflicting event executed since).
    pub pruned_sleep: u64,
    /// Alternatives skipped because they branch deeper than
    /// [`Budget::max_depth`].
    pub pruned_depth: u64,
    /// Whether [`Budget::max_schedules`] stopped the DFS early.
    pub truncated: bool,
    /// Schedules still queued when the budget ran out (0 unless
    /// `truncated`): the honest "explored N, M left" denominator.
    pub frontier_left: u64,
    /// Runs that returned an error instead of an outcome.
    pub violations: Vec<Violation>,
    /// The largest decision count seen in any run.
    pub max_decisions: usize,
}

impl ShapeReport {
    /// Whether the observed outcome set is *exactly* the declared
    /// allowed set — no extra tuples, no missing tuples — and no run
    /// errored.
    pub fn conforms(&self, spec: &OutcomeSpec) -> bool {
        if !self.violations.is_empty() {
            return false;
        }
        let allowed = spec.allowed_for(self.config);
        self.outcomes.len() == allowed.len() && self.outcomes.iter().all(|o| o.allowed)
    }

    /// The observed tuples, in enumeration order.
    pub fn observed(&self) -> Vec<&[u32]> {
        self.outcomes.iter().map(|o| o.tuple.as_slice()).collect()
    }

    /// Total alternatives pruned across all disciplines.
    pub fn pruned(&self) -> u64 {
        self.pruned_indep + self.pruned_sleep + self.pruned_depth
    }

    /// Renders the one-line outcome summary used by the CLI table,
    /// e.g. `"(0, 1)=3 (2, 0)=1"`.
    pub fn outcome_cell(&self) -> String {
        let cells: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| {
                let mark = if o.forbidden {
                    "!"
                } else if o.allowed {
                    ""
                } else {
                    "?"
                };
                format!("{mark}{}={}", OutcomeSpec::fmt_tuple(&o.tuple), o.schedules)
            })
            .collect();
        cells.join(" ")
    }

    /// Serializes the report as a JSON object (no external
    /// dependencies, field order stable).
    pub fn to_json(&self) -> String {
        let outcomes: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| {
                let tuple: Vec<String> = o.tuple.iter().map(u32::to_string).collect();
                format!(
                    "{{\"tuple\":[{}],\"schedules\":{},\"witness\":\"{}\",\"allowed\":{},\"forbidden\":{}}}",
                    tuple.join(","),
                    o.schedules,
                    o.witness,
                    o.allowed,
                    o.forbidden
                )
            })
            .collect();
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"schedule\":\"{}\",\"error\":\"{}\"}}",
                    v.id,
                    v.error.replace('\\', "\\\\").replace('"', "\\\"")
                )
            })
            .collect();
        format!(
            "{{\"shape\":\"{}\",\"config\":\"{}\",\"mode\":\"{}\",\"outcomes\":[{}],\
             \"explored\":{},\"pruned_indep\":{},\"pruned_sleep\":{},\"pruned_depth\":{},\
             \"truncated\":{},\"frontier_left\":{},\"violations\":[{}],\"max_decisions\":{}}}",
            self.shape,
            self.config,
            self.mode,
            outcomes.join(","),
            self.explored,
            self.pruned_indep,
            self.pruned_sleep,
            self.pruned_depth,
            self.truncated,
            self.frontier_left,
            violations.join(","),
            self.max_decisions
        )
    }
}

/// A queued DFS node: the choice prefix to force, plus the sleep set —
/// `(seq, footprint)` of sibling alternatives already explored at the
/// branch decision, to be skipped until a conflicting event executes.
struct Node {
    prefix: Vec<u32>,
    sleep: Vec<(u64, Footprint)>,
}

/// The system configuration exploration runs under: the paper's
/// microbenchmark machine with invariant checks on.
///
/// `CheckLevel::Invariants` rather than `Full`: the battery's racy
/// negatives *race by design* on every schedule, and exploration wants
/// their outcome sets, not 2^N copies of the same race report. The
/// conformance tests run the race detector on the battery separately.
pub fn explore_config(protocol: ProtocolConfig) -> SystemConfig {
    let mut cfg = SystemConfig::micro15(protocol);
    cfg.check = CheckLevel::Invariants;
    cfg
}

/// Replays one schedule of `litmus` under `protocol` and returns the
/// full run (statistics, decision trace, observed tuple).
///
/// # Errors
///
/// As [`Simulator::run`]; additionally panics inside the engine if the
/// id forces a choice index past a decision's candidate count (ids are
/// only meaningful for the shape and configuration they came from).
pub fn replay(
    litmus: &Litmus,
    protocol: ProtocolConfig,
    id: &ScheduleId,
) -> Result<ExploredRun, SimError> {
    let sim = Simulator::new(explore_config(protocol));
    let workload = (litmus.build)();
    let words: Vec<WordAddr> = litmus.spec.words.iter().map(|&w| WordAddr(w)).collect();
    sim.run_explored(&workload, id.prefix(), &words)
}

/// Explores `litmus` under `protocol`: DFS over schedule prefixes from
/// the identity schedule, branching per `mode`, stopping at `budget`.
pub fn explore(
    litmus: &Litmus,
    protocol: ProtocolConfig,
    mode: ExploreMode,
    budget: Budget,
) -> ShapeReport {
    let sim = Simulator::new(explore_config(protocol));
    let words: Vec<WordAddr> = litmus.spec.words.iter().map(|&w| WordAddr(w)).collect();
    let allowed = litmus.spec.allowed_for(protocol);

    let mut report = ShapeReport {
        shape: litmus.name,
        config: protocol,
        mode,
        outcomes: Vec::new(),
        explored: 0,
        pruned_indep: 0,
        pruned_sleep: 0,
        pruned_depth: 0,
        truncated: false,
        frontier_left: 0,
        violations: Vec::new(),
        max_decisions: 0,
    };
    // tuple -> (count, first witness), ordered for stable output.
    let mut outcomes: BTreeMap<Vec<u32>, (u64, ScheduleId)> = BTreeMap::new();

    let mut stack: Vec<Node> = vec![Node {
        prefix: Vec::new(),
        sleep: Vec::new(),
    }];
    while let Some(node) = stack.pop() {
        if report.explored >= budget.max_schedules {
            report.truncated = true;
            report.frontier_left = stack.len() as u64 + 1;
            break;
        }
        report.explored += 1;
        let id = ScheduleId::from_prefix(&node.prefix);
        let workload = (litmus.build)();
        let run = match sim.run_explored(&workload, &node.prefix, &words) {
            Ok(run) => run,
            Err(e) => {
                report.violations.push(Violation {
                    id,
                    error: e.to_string(),
                });
                continue;
            }
        };
        report.max_decisions = report.max_decisions.max(run.decisions.len());
        outcomes
            .entry(run.observed.clone())
            .and_modify(|(n, _)| *n += 1)
            .or_insert((1, id));

        // Branch: for every decision past the forced prefix, queue the
        // alternatives this run did not take.
        let mut sleep = node.sleep;
        for (i, d) in run.decisions.iter().enumerate().skip(node.prefix.len()) {
            let chosen = d.candidates[d.chosen as usize];
            // Executing an event wakes every sleeping event it
            // conflicts with (their order relative to it now matters).
            sleep.retain(|&(_, fp)| !fp.conflicts(chosen.fp));
            if i >= budget.max_depth {
                report.pruned_depth += d.candidates.len() as u64 - 1;
                continue;
            }
            // Siblings branched at this decision, for sleep propagation.
            let mut branched: Vec<(u64, Footprint)> = Vec::new();
            for (k, cand) in d.candidates.iter().enumerate() {
                if k == d.chosen as usize {
                    continue;
                }
                if mode.sleeps() && sleep.iter().any(|&(seq, _)| seq == cand.seq) {
                    report.pruned_sleep += 1;
                    continue;
                }
                if mode == ExploreMode::Dpor && !cand.fp.conflicts(chosen.fp) {
                    report.pruned_indep += 1;
                    continue;
                }
                let mut prefix: Vec<u32> = run.decisions[..i].iter().map(|d| d.chosen).collect();
                prefix.push(k as u32);
                // The child must not re-explore orders this run (and
                // earlier siblings) already cover: everything already
                // taken at this decision sleeps in the child, unless it
                // conflicts with the child's own choice (then the
                // child's whole point is the other order).
                let mut child_sleep = sleep.clone();
                if mode.sleeps() {
                    child_sleep.extend(
                        branched
                            .iter()
                            .chain(std::iter::once(&(chosen.seq, chosen.fp)))
                            .filter(|&&(_, fp)| !fp.conflicts(cand.fp))
                            .copied(),
                    );
                }
                stack.push(Node {
                    prefix,
                    sleep: child_sleep,
                });
                branched.push((cand.seq, cand.fp));
            }
        }
    }

    report.outcomes = outcomes
        .into_iter()
        .map(|(tuple, (schedules, witness))| {
            let is = |set: &[&[u32]]| set.contains(&tuple.as_slice());
            OutcomeRow {
                allowed: is(allowed),
                forbidden: is(litmus.spec.forbidden),
                tuple,
                schedules,
                witness,
            }
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_id_round_trips() {
        for prefix in [
            vec![],
            vec![0, 0, 0],
            vec![1],
            vec![0, 2],
            vec![1, 0, 3, 0],
            vec![0, 0, 1, 0, 2, 0, 0],
        ] {
            let id = ScheduleId::from_prefix(&prefix);
            let back = ScheduleId::parse(&id.to_string()).unwrap();
            assert_eq!(back, id, "prefix {prefix:?} via `{id}`");
            // The round-tripped prefix replays identically: trailing
            // defaults are the engine's own behaviour.
            let trimmed =
                &prefix[..prefix.len() - prefix.iter().rev().take_while(|&&c| c == 0).count()];
            assert_eq!(back.prefix(), trimmed);
        }
    }

    #[test]
    fn schedule_id_rejects_malformed_input() {
        for bad in ["x", "1", "1.0", "3.1-2.1", "1.1-1.2", "a.b", ""] {
            assert!(ScheduleId::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn identity_id_is_root() {
        assert_eq!(ScheduleId::root().to_string(), "r");
        assert_eq!(ScheduleId::parse("r").unwrap(), ScheduleId::root());
        assert_eq!(ScheduleId::from_prefix(&[0, 0]), ScheduleId::root());
    }
}
