//! An in-tree FxHash-style hasher for the simulator's hot-path maps.
//!
//! The default `std::collections::HashMap` hasher (SipHash-1-3) is
//! DoS-resistant but costs tens of cycles per lookup — measurable when
//! every simulated memory access consults a store buffer, an MSHR file,
//! and a couple of protocol-state maps. All of those maps are keyed by
//! small trusted integers ([`crate::LineAddr`], [`crate::WordAddr`],
//! [`crate::ReqId`]) minted by the simulator itself, so hash flooding is
//! not a threat and a multiply-and-rotate hash in the style of rustc's
//! `FxHashMap` is the right trade.
//!
//! Determinism note: the hash function is fixed (no per-process random
//! seed, unlike SipHash), so even *iteration order* is reproducible
//! across runs of the same binary. The simulator still never iterates
//! these maps in an order-sensitive way, but the fixed seed removes one
//! more source of accidental nondeterminism.
//!
//! # Examples
//!
//! ```
//! use gsim_types::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "line seven");
//! assert_eq!(m.get(&7), Some(&"line seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// via `FxHashMap::default()` (the two-argument constructors differ).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized builder producing [`FxHasher`]s (fixed seed, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit Fowler-style multiply hash as used by rustc's `FxHashMap`:
/// each word is folded in with a rotate, xor, and multiply by a constant
/// derived from the golden ratio.
///
/// Not cryptographic and not flood-resistant — only use for maps whose
/// keys the simulator itself mints.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// `floor(2^64 / phi)`, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold 8 bytes at a time; the tail is padded into one word.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Fold the tail length as its own word so "n bytes of x" and
            // "n+1 bytes of x" never collide.
            self.add_to_hash(u64::from_le_bytes(tail));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineAddr, Rng64, WordAddr};
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No per-instance randomness: two builders agree on every key.
        for k in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_of(&k), hash_of(&k));
            assert_eq!(hash_of(&LineAddr(k)), hash_of(&LineAddr(k)));
        }
    }

    #[test]
    fn adjacent_keys_do_not_collide() {
        // The simulator's keys are dense small integers; the multiply
        // must spread them across the table.
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(hash_of(&k)), "collision at {k}");
        }
    }

    #[test]
    fn byte_stream_tail_lengths_are_distinct() {
        // 1..16-byte writes must all hash differently (tail padding must
        // encode the length).
        let bytes = [7u8; 16];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=16 {
            let mut h = FxHasher::default();
            h.write(&bytes[..len]);
            assert!(seen.insert(h.finish()), "tail collision at len {len}");
        }
    }

    #[test]
    fn map_behaves_like_std_map() {
        let mut rng = Rng64::seed_from_u64(0xf0);
        for _ in 0..32 {
            let mut fx: FxHashMap<u64, u32> = FxHashMap::default();
            let mut std_map = std::collections::HashMap::new();
            for _ in 0..rng.gen_usize(1, 300) {
                let (k, v) = (rng.gen_u64(0, 128), rng.gen_u32(0, 1000));
                if rng.gen_u32(0, 4) == 0 {
                    assert_eq!(fx.remove(&k), std_map.remove(&k));
                } else {
                    assert_eq!(fx.insert(k, v), std_map.insert(k, v));
                }
            }
            assert_eq!(fx.len(), std_map.len());
            for (k, v) in &std_map {
                assert_eq!(fx.get(k), Some(v));
            }
        }
    }

    #[test]
    fn typed_addr_keys_round_trip() {
        let mut m: FxHashMap<WordAddr, u32> = FxHashMap::default();
        m.insert(WordAddr(3), 9);
        m.insert(WordAddr(3 + 16), 10);
        assert_eq!(m[&WordAddr(3)], 9);
        assert_eq!(m[&WordAddr(19)], 10);
    }
}
