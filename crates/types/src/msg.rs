//! The coherence message taxonomy and flit accounting.
//!
//! Every message the protocols exchange is an instance of [`Msg`]. The
//! network-traffic figures of the paper (Figures 2c, 3c, 4c) report *flit
//! crossings* — flits times links traversed — split into four classes
//! ([`MsgClass`]): data reads, data registrations (writes), writebacks /
//! writethroughs, and atomics. [`Msg::flits`] implements the paper's
//! Garnet-style sizing: a 16-byte flit, one-flit control messages, and
//! `1 + ceil(payload/16B)` flits for data-carrying messages. GPU coherence
//! always moves whole 64-byte lines (5 flits); DeNovo moves only the words
//! named in the [`WordMask`] — the "decoupled granularity" advantage of
//! Table 2.

use crate::addr::{LineAddr, WordAddr, WordMask, WORDS_PER_LINE, WORD_BYTES};
use crate::ids::NodeId;
use crate::sync::{AtomicOp, Scope, SyncOrd, Value};

/// Bytes per network flit (Garnet-style 128-bit flits).
pub const FLIT_BYTES: u64 = 16;
/// Flits in a control (payload-free) message.
pub const CTRL_FLITS: u32 = 1;

/// Traffic class of a message, the paper's network-traffic breakdown.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgClass {
    /// Data read requests and their data responses.
    Read,
    /// Data registration (ownership) requests and grants — DeNovo writes.
    Registration,
    /// Writebacks and writethroughs (including their acks).
    WbWt,
    /// Synchronization/atomic requests and responses.
    Atomic,
}

impl MsgClass {
    /// All classes in the figures' legend order.
    pub const ALL: [MsgClass; 4] = [
        MsgClass::Read,
        MsgClass::Registration,
        MsgClass::WbWt,
        MsgClass::Atomic,
    ];

    /// The figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Read => "Read",
            MsgClass::Registration => "Regist.",
            MsgClass::WbWt => "WB/WT",
            MsgClass::Atomic => "Atomics",
        }
    }

    /// Index into per-class counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgClass::Read => 0,
            MsgClass::Registration => 1,
            MsgClass::WbWt => 2,
            MsgClass::Atomic => 3,
        }
    }
}

/// Which controller at the destination node receives a message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Component {
    /// The node's private L1 controller.
    L1,
    /// The node's bank of the shared L2 (for DeNovo: the registry bank).
    L2,
}

/// A line's worth of data words; only the positions named by the
/// accompanying mask are meaningful.
pub type LineData = [Value; WORDS_PER_LINE];

/// The payload-specific part of a coherence message.
///
/// Requests carry the requester so responses (possibly from a *forwarded*
/// third party, DeNovo's extra hop) can be routed straight back.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// L1 -> L2: read the masked words of `line`.
    ReadReq {
        /// The line being read.
        line: LineAddr,
        /// The words wanted.
        mask: WordMask,
        /// Who the data response must go to (possibly via an owner
        /// forward).
        requester: NodeId,
    },
    /// L2/remote-L1 -> L1: data response; `mask` names the valid words.
    ReadResp {
        /// The line being filled.
        line: LineAddr,
        /// Which words of `data` are meaningful.
        mask: WordMask,
        /// The data (masked positions only).
        data: LineData,
    },
    /// GPU coherence, L1 -> L2: write the masked words through to the L2.
    WriteThrough {
        /// The line being written.
        line: LineAddr,
        /// Which words carry dirty data.
        mask: WordMask,
        /// The dirty values (masked positions only).
        data: LineData,
    },
    /// L2 -> L1: writethrough acknowledged (release counting).
    WtAck {
        /// The written-through line.
        line: LineAddr,
    },
    /// DeNovo, L1 -> L2 registry: request ownership of the masked words.
    /// `sync` marks synchronization registrations (DeNovoSync0 registers
    /// both sync reads and sync writes).
    RegReq {
        /// The line whose words are requested.
        line: LineAddr,
        /// The words to register.
        mask: WordMask,
        /// Whether this is a synchronization registration (DeNovoSync0
        /// registers both sync reads and sync writes).
        sync: bool,
        /// The new owner.
        requester: NodeId,
    },
    /// L2/old-owner -> L1: ownership granted; `data` carries current
    /// values for the masked words (needed by sync RMWs).
    RegResp {
        /// The granted line.
        line: LineAddr,
        /// The granted words.
        mask: WordMask,
        /// Current values (meaningful for sync grants, whose RMW reads
        /// them; data grants are pure acks).
        data: LineData,
        /// Whether this grants a synchronization registration.
        sync: bool,
    },
    /// DeNovo, L2 -> old owner: ownership of the masked words has been
    /// transferred to `new_owner`; send them the data (the distributed
    /// queue of DeNovoSync0 when the old owner's own ack is in flight).
    RegFwd {
        /// The line whose words were re-registered.
        line: LineAddr,
        /// The transferred words.
        mask: WordMask,
        /// Where ownership (and, for sync, the data) must go.
        new_owner: NodeId,
        /// Whether the new registration is a synchronization one.
        sync: bool,
    },
    /// GPU coherence, L1 -> L2: atomic performed at the L2 bank.
    AtomicReq {
        /// The synchronization word.
        word: WordAddr,
        /// The read-modify-write operation.
        op: AtomicOp,
        /// The operation's operands.
        operands: [Value; 2],
        /// Acquire/release flavour (informational at the L2).
        ord: SyncOrd,
        /// The HRF scope (informational at the L2).
        scope: Scope,
        /// Who receives the response.
        requester: NodeId,
    },
    /// L2 -> L1: atomic done; `old` is the pre-operation value.
    AtomicResp {
        /// The synchronization word.
        word: WordAddr,
        /// The pre-operation value.
        old: Value,
    },
    /// DeNovo, L1 -> L2: voluntary writeback of owned (registered) words
    /// on eviction; ownership returns to the registry.
    WbReq {
        /// The evicted line.
        line: LineAddr,
        /// The owned words being returned.
        mask: WordMask,
        /// Their values.
        data: LineData,
    },
    /// L2 -> L1: writeback accepted; echoes the written-back mask so the
    /// L1 can retire the right in-flight writeback when several race on
    /// one line.
    WbAck {
        /// The written-back line.
        line: LineAddr,
        /// The mask the writeback carried.
        mask: WordMask,
    },
}

impl MsgKind {
    /// The traffic class this message is accounted under.
    pub fn class(&self) -> MsgClass {
        match self {
            MsgKind::ReadReq { .. } | MsgKind::ReadResp { .. } => MsgClass::Read,
            MsgKind::RegReq { sync, .. }
            | MsgKind::RegResp { sync, .. }
            | MsgKind::RegFwd { sync, .. } => {
                if *sync {
                    MsgClass::Atomic
                } else {
                    MsgClass::Registration
                }
            }
            MsgKind::WriteThrough { .. }
            | MsgKind::WtAck { .. }
            | MsgKind::WbReq { .. }
            | MsgKind::WbAck { .. } => MsgClass::WbWt,
            MsgKind::AtomicReq { .. } | MsgKind::AtomicResp { .. } => MsgClass::Atomic,
        }
    }

    /// Payload words carried by this message (0 for control messages).
    pub fn payload_words(&self) -> u32 {
        match self {
            MsgKind::ReadResp { mask, .. }
            | MsgKind::WriteThrough { mask, .. }
            | MsgKind::WbReq { mask, .. } => mask.count(),
            // A registration grant only needs data for sync registrations
            // (the RMW reads the value); data-write grants are acks since
            // the writer overwrites the whole word.
            MsgKind::RegResp { mask, sync, .. } if *sync => mask.count(),
            MsgKind::AtomicResp { .. } => 1,
            MsgKind::AtomicReq { .. } => 1, // carries operands
            _ => 0,
        }
    }
}

/// A coherence message in flight on the interconnect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Msg {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Destination controller at `dst`.
    pub dst_comp: Component,
    /// Payload.
    pub kind: MsgKind,
}

impl Msg {
    /// Number of flits this message occupies on a link.
    ///
    /// Control messages are a single flit; data-carrying messages take one
    /// header flit plus `ceil(payload_bytes / 16)` payload flits. A full
    /// 64-byte line is therefore 5 flits.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsim_types::{Msg, MsgKind, Component, NodeId, LineAddr, WordMask};
    ///
    /// let full = Msg {
    ///     src: NodeId(0), dst: NodeId(1), dst_comp: Component::L2,
    ///     kind: MsgKind::ReadResp {
    ///         line: LineAddr(0), mask: WordMask::full(), data: [0; 16],
    ///     },
    /// };
    /// assert_eq!(full.flits(), 5);
    /// let one_word = Msg {
    ///     kind: MsgKind::ReadResp {
    ///         line: LineAddr(0), mask: WordMask::single(0), data: [0; 16],
    ///     },
    ///     ..full
    /// };
    /// assert_eq!(one_word.flits(), 2);
    /// ```
    pub fn flits(&self) -> u32 {
        let words = self.kind.payload_words();
        if words == 0 {
            CTRL_FLITS
        } else {
            let payload_bytes = words as u64 * WORD_BYTES;
            CTRL_FLITS + payload_bytes.div_ceil(FLIT_BYTES) as u32
        }
    }

    /// The traffic class this message is accounted under.
    #[inline]
    pub fn class(&self) -> MsgClass {
        self.kind.class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: MsgKind) -> Msg {
        Msg {
            src: NodeId(0),
            dst: NodeId(5),
            dst_comp: Component::L2,
            kind,
        }
    }

    #[test]
    fn control_messages_are_one_flit() {
        let m = msg(MsgKind::ReadReq {
            line: LineAddr(1),
            mask: WordMask::full(),
            requester: NodeId(0),
        });
        assert_eq!(m.flits(), 1);
        let m = msg(MsgKind::WtAck { line: LineAddr(1) });
        assert_eq!(m.flits(), 1);
        let m = msg(MsgKind::WbAck {
            line: LineAddr(1),
            mask: WordMask::full(),
        });
        assert_eq!(m.flits(), 1);
    }

    #[test]
    fn data_message_sizing() {
        for (words, want) in [(1u32, 2u32), (4, 2), (5, 3), (8, 3), (16, 5)] {
            let mask: WordMask = (0..words as usize).collect();
            let m = msg(MsgKind::WriteThrough {
                line: LineAddr(0),
                mask,
                data: [0; WORDS_PER_LINE],
            });
            assert_eq!(m.flits(), want, "words={words}");
        }
    }

    #[test]
    fn reg_grant_is_ack_unless_sync() {
        let data_grant = msg(MsgKind::RegResp {
            line: LineAddr(0),
            mask: WordMask::single(3),
            data: [0; WORDS_PER_LINE],
            sync: false,
        });
        assert_eq!(data_grant.flits(), 1);
        let sync_grant = msg(MsgKind::RegResp {
            line: LineAddr(0),
            mask: WordMask::single(3),
            data: [0; WORDS_PER_LINE],
            sync: true,
        });
        assert_eq!(sync_grant.flits(), 2);
    }

    #[test]
    fn classes() {
        assert_eq!(
            MsgKind::ReadReq {
                line: LineAddr(0),
                mask: WordMask::full(),
                requester: NodeId(0)
            }
            .class(),
            MsgClass::Read
        );
        assert_eq!(
            MsgKind::RegReq {
                line: LineAddr(0),
                mask: WordMask::single(0),
                sync: false,
                requester: NodeId(0)
            }
            .class(),
            MsgClass::Registration
        );
        assert_eq!(
            MsgKind::RegReq {
                line: LineAddr(0),
                mask: WordMask::single(0),
                sync: true,
                requester: NodeId(0)
            }
            .class(),
            MsgClass::Atomic
        );
        assert_eq!(
            MsgKind::WbAck {
                line: LineAddr(0),
                mask: WordMask::full()
            }
            .class(),
            MsgClass::WbWt
        );
        assert_eq!(
            MsgKind::AtomicResp {
                word: WordAddr(0),
                old: 0
            }
            .class(),
            MsgClass::Atomic
        );
        // Legend order is stable.
        for (i, c) in MsgClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
