//! Log2-bucketed latency histograms and the per-run latency breakdown.
//!
//! The paper attributes its performance gaps to *where time goes* —
//! load-to-use stalls, atomic round-trips, synchronization spinning,
//! store-buffer drains at releases. Aggregate cycle counts can't show
//! that, so the simulator folds four always-on latency histograms into
//! [`SimStats`](crate::SimStats) as a [`LatencyBreakdown`].
//!
//! A histogram is a fixed array of 32 power-of-two buckets: bucket 0
//! holds samples 0 and 1, and bucket `k` (for `k ≥ 1`) holds samples in
//! `[2^k, 2^(k+1))` (see [`LatencyHistogram::bucket_index`]). Recording a
//! sample is two adds and a `leading_zeros` — cheap enough to leave on
//! in every run — and percentiles are answered from the bucket counts
//! with a worst-case error of one bucket width (≤ 2x, which is exactly
//! the fidelity a log-scale latency plot communicates anyway).

use crate::ids::Cycle;
use std::fmt;
use std::ops::AddAssign;

/// Number of log2 buckets. Bucket 31 is a saturating catch-all, so the
/// histogram covers `[0, 2^31)` exactly (buckets 0–30) and everything
/// above approximately.
pub const BUCKETS: usize = 32;

/// A fixed-size log2-bucketed histogram of cycle latencies.
///
/// # Examples
///
/// ```
/// use gsim_types::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 100);
/// assert!(h.percentile(50.0).unwrap() <= 3);
/// assert!(h.percentile(99.0).unwrap() >= 100);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// The bucket a sample lands in: 0 for values ≤ 1, otherwise the
    /// position of the highest set bit (`2, 3 → 1`, `4..8 → 2`, ...),
    /// saturating at [`BUCKETS`]` - 1`.
    #[inline]
    pub fn bucket_index(value: Cycle) -> usize {
        if value <= 1 {
            0
        } else {
            (63 - value.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of a bucket (what percentiles report).
    #[inline]
    pub fn bucket_upper_bound(index: usize) -> Cycle {
        if index >= BUCKETS - 1 {
            u64::MAX
        } else {
            (2u64 << index) - 1
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, value: Cycle) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (for the mean).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> Cycle {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample; 0 when empty.
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// Mean of the samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-th percentile (`0 < q ≤ 100`) as the upper bound of the
    /// bucket containing it, clamped to the observed maximum. `None`
    /// when the histogram is empty.
    pub fn percentile(&self, q: f64) -> Option<Cycle> {
        if self.count == 0 {
            return None;
        }
        // Rank of the wanted sample, 1-based, ceiling — p100 is the last.
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// The `q`-th percentile (`0 < q ≤ 100`) as the *midpoint* of the
    /// bucket containing it, clamped to the observed `[min, max]` range.
    /// `None` when the histogram is empty.
    ///
    /// Unlike [`percentile`](Self::percentile) (which reports the bucket
    /// upper bound, biased high by up to 2x), the midpoint estimate of a
    /// `[2^k, 2^(k+1))` bucket is `1.5 * 2^k`, so the estimate is always
    /// within a factor of 1.5 of the true sample value: at worst the
    /// sample sits at the bucket's low edge (reported 1.5x high) or just
    /// under its upper bound (reported ~1.33x low). For the saturating
    /// catch-all bucket only the observed maximum is known and is
    /// reported as-is.
    pub fn percentile_midpoint(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = if i == 0 {
                    0.5 // bucket 0 holds {0, 1}
                } else if i >= BUCKETS - 1 {
                    self.max as f64 // catch-all: only the max is known
                } else {
                    1.5 * (1u64 << i) as f64
                };
                return Some(mid.clamp(self.min() as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Median estimate: [`percentile_midpoint`](Self::percentile_midpoint)
    /// at q = 50 (within 1.5x of the true median; see there for the
    /// error bound). `None` when empty.
    pub fn p50(&self) -> Option<f64> {
        self.percentile_midpoint(50.0)
    }

    /// 99th-percentile estimate: [`percentile_midpoint`](Self::percentile_midpoint)
    /// at q = 99 (within 1.5x of the true p99; see there for the error
    /// bound). `None` when empty.
    pub fn p99(&self) -> Option<f64> {
        self.percentile_midpoint(99.0)
    }

    /// The raw bucket counts (for exporters and tests).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Reconstructs a histogram from serialized raw parts (the inverse
    /// of [`LatencyHistogram::buckets`]/[`sum`](LatencyHistogram::sum)/
    /// [`min`](LatencyHistogram::min)/[`max`](LatencyHistogram::max)).
    /// The sample count is derived from the bucket counts, and `min` is
    /// normalized back to the empty-histogram sentinel when no samples
    /// were recorded.
    pub fn from_raw(counts: [u64; BUCKETS], sum: u64, min: Cycle, max: Cycle) -> Self {
        let count: u64 = counts.iter().sum();
        LatencyHistogram {
            counts,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }
}

impl AddAssign for LatencyHistogram {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..BUCKETS {
            self.counts[i] += rhs.counts[i];
        }
        self.count += rhs.count;
        self.sum = self.sum.saturating_add(rhs.sum);
        self.min = self.min.min(rhs.min);
        self.max = self.max.max(rhs.max);
    }
}

/// The four latency populations the simulator attributes cycles to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Load issue to value availability (L1 hits record 1 cycle).
    pub load_to_use: LatencyHistogram,
    /// Atomic issue to completion, one attempt (includes any release
    /// phase the same instruction performs first).
    pub atomic_rtt: LatencyHistogram,
    /// Synchronization wait: first issue attempt of a sync instruction
    /// to its completion, spanning retries and DeNovoSync0 backoff —
    /// barrier waits and lock-acquire spins dominate this population.
    pub barrier_wait: LatencyHistogram,
    /// Store-buffer drain at releases and kernel boundaries.
    pub sb_drain: LatencyHistogram,
}

impl LatencyBreakdown {
    /// `(label, p50, p99, mean)` rows for every non-empty population —
    /// the compact summary profiler reports embed. Percentiles are
    /// bucket-midpoint estimates (within 1.5x; see
    /// [`LatencyHistogram::percentile_midpoint`]), the mean is exact.
    pub fn summaries(&self) -> Vec<(&'static str, f64, f64, f64)> {
        self.named()
            .into_iter()
            .filter(|(_, h)| !h.is_empty())
            .map(|(name, h)| (name, h.p50().unwrap(), h.p99().unwrap(), h.mean().unwrap()))
            .collect()
    }

    /// `(label, histogram)` pairs in display order.
    pub fn named(&self) -> [(&'static str, &LatencyHistogram); 4] {
        [
            ("load-to-use", &self.load_to_use),
            ("atomic-rtt", &self.atomic_rtt),
            ("barrier-wait", &self.barrier_wait),
            ("sb-drain", &self.sb_drain),
        ]
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.load_to_use += rhs.load_to_use;
        self.atomic_rtt += rhs.atomic_rtt;
        self.barrier_wait += rhs.barrier_wait;
        self.sb_drain += rhs.sb_drain;
    }
}

impl fmt::Display for LatencyBreakdown {
    /// Renders the percentile table the CLI's `--hist` flag prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14}{:>10}{:>8}{:>8}{:>8}{:>8}{:>10}",
            "latency", "samples", "p50", "p95", "p99", "max", "mean"
        )?;
        for (name, h) in self.named() {
            if h.is_empty() {
                writeln!(
                    f,
                    "{name:<14}{:>10}       -       -       -       -         -",
                    0
                )?;
            } else {
                writeln!(
                    f,
                    "{name:<14}{:>10}{:>8}{:>8}{:>8}{:>8}{:>10.1}",
                    h.count(),
                    h.percentile(50.0).unwrap(),
                    h.percentile(95.0).unwrap(),
                    h.percentile(99.0).unwrap(),
                    h.max(),
                    h.mean().unwrap(),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(99.0), None);
    }

    #[test]
    fn single_sample() {
        let mut h = LatencyHistogram::default();
        h.record(37);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 37);
        assert_eq!(h.max(), 37);
        assert_eq!(h.mean(), Some(37.0));
        // Every percentile is that one sample, clamped to the max.
        assert_eq!(h.percentile(1.0), Some(37));
        assert_eq!(h.percentile(50.0), Some(37));
        assert_eq!(h.percentile(100.0), Some(37));
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(7), 2);
        assert_eq!(LatencyHistogram::bucket_index(8), 3);
        assert_eq!(LatencyHistogram::bucket_upper_bound(0), 1);
        assert_eq!(LatencyHistogram::bucket_upper_bound(1), 3);
        assert_eq!(LatencyHistogram::bucket_upper_bound(2), 7);
        assert_eq!(LatencyHistogram::bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    /// Exhaustive sweep of every power-of-two boundary in the domain:
    /// `2^k - 1`, `2^k`, and `2^k + 1` must land where the bucket
    /// contract says, all the way up to the saturating catch-all.
    #[test]
    fn bucket_index_at_every_power_of_two_boundary() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        for k in 1..64u32 {
            let p = 1u64 << k;
            let expect = (k as usize).min(BUCKETS - 1);
            assert_eq!(
                LatencyHistogram::bucket_index(p - 1),
                (k as usize - 1).min(BUCKETS - 1),
                "2^{k} - 1"
            );
            assert_eq!(LatencyHistogram::bucket_index(p), expect, "2^{k}");
            assert_eq!(LatencyHistogram::bucket_index(p + 1), expect, "2^{k} + 1");
        }
        assert_eq!(LatencyHistogram::bucket_index(Cycle::MAX), BUCKETS - 1);
    }

    /// `bucket_upper_bound` is the exact inverse of `bucket_index`: the
    /// bound itself is the last value mapping to the bucket, and the
    /// next value maps to the bucket after it (except the catch-all,
    /// whose bound is `u64::MAX` with nothing beyond it).
    #[test]
    fn bucket_upper_bound_is_inclusive_and_tight() {
        for k in 0..BUCKETS {
            let ub = LatencyHistogram::bucket_upper_bound(k);
            assert_eq!(LatencyHistogram::bucket_index(ub), k, "bound of bucket {k}");
            if k < BUCKETS - 1 {
                assert_eq!(
                    LatencyHistogram::bucket_index(ub + 1),
                    k + 1,
                    "value past bucket {k}"
                );
            } else {
                assert_eq!(ub, u64::MAX, "catch-all bound saturates");
            }
        }
        // Out-of-range indices also saturate instead of shifting past
        // the word width (`2u64 << 63` would overflow).
        assert_eq!(LatencyHistogram::bucket_upper_bound(BUCKETS), u64::MAX);
        assert_eq!(LatencyHistogram::bucket_upper_bound(usize::MAX), u64::MAX);
        // The exactly-covered range: bucket 30 ends at 2^31 - 1.
        assert_eq!(
            LatencyHistogram::bucket_upper_bound(BUCKETS - 2),
            (1u64 << 31) - 1
        );
    }

    /// Recording the extreme values must not overflow or misfile.
    #[test]
    fn extreme_samples_record_cleanly() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        h.record(Cycle::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[0], 2, "0 and 1 share bucket 0");
        assert_eq!(h.buckets()[BUCKETS - 1], 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), Cycle::MAX);
        // sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
        h.record(Cycle::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates on repeat overflow");
    }

    #[test]
    fn saturating_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(u64::MAX);
        h.record(1u64 << 40);
        assert_eq!(h.buckets()[BUCKETS - 1], 2, "both land in the catch-all");
        // Within the catch-all bucket only the observed max is known.
        assert_eq!(h.percentile(50.0), Some(u64::MAX));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
        let mut g = LatencyHistogram::default();
        g.record(1u64 << 40);
        assert_eq!(
            g.percentile(50.0),
            Some(1u64 << 40),
            "clamped to observed max"
        );
    }

    #[test]
    fn percentiles_track_distribution() {
        let mut h = LatencyHistogram::default();
        // 90 fast ops at 1 cycle, 10 slow ones at ~1000.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.percentile(50.0), Some(1));
        assert_eq!(h.percentile(90.0), Some(1));
        // p95/p99 land in the 1000-cycle bucket [512, 1024).
        assert_eq!(h.percentile(95.0), Some(1000));
        assert_eq!(h.percentile(99.0), Some(1000));
        assert_eq!(h.mean(), Some((90.0 + 10_000.0) / 100.0));
    }

    /// The midpoint estimate stays within its documented 1.5x bound and
    /// clamps to the observed range.
    #[test]
    fn midpoint_percentiles_bounded() {
        let mut h = LatencyHistogram::default();
        for v in [5u64, 6, 7, 300, 300, 300, 300, 300, 300, 1000] {
            h.record(v);
        }
        // Every estimate within a factor of 1.5 of an upper-bound-based
        // exact-rank answer computed from the raw samples.
        let mut sorted = [5u64, 6, 7, 300, 300, 300, 300, 300, 300, 1000];
        sorted.sort_unstable();
        for q in [10.0, 50.0, 90.0, 99.0] {
            let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let truth = sorted[rank - 1] as f64;
            let est = h.percentile_midpoint(q).unwrap();
            assert!(
                est <= truth * 1.5 + 1e-9 && est >= truth / 1.5 - 1e-9,
                "q={q}: estimate {est} not within 1.5x of {truth}"
            );
        }
        assert_eq!(h.p50(), h.percentile_midpoint(50.0));
        assert_eq!(h.p99(), h.percentile_midpoint(99.0));
        // Clamping: a single sample reports itself exactly.
        let mut one = LatencyHistogram::default();
        one.record(37);
        assert_eq!(one.p50(), Some(37.0));
        assert_eq!(one.p99(), Some(37.0));
        // Catch-all bucket reports the observed max.
        let mut big = LatencyHistogram::default();
        big.record(1u64 << 40);
        assert_eq!(big.p99(), Some((1u64 << 40) as f64));
        // Empty histogram has no percentiles.
        assert_eq!(LatencyHistogram::default().p50(), None);
    }

    #[test]
    fn breakdown_summaries_skip_empty_rows() {
        let mut b = LatencyBreakdown::default();
        b.load_to_use.record(4);
        b.load_to_use.record(4);
        let rows = b.summaries();
        assert_eq!(rows.len(), 1);
        let (name, p50, p99, mean) = rows[0];
        assert_eq!(name, "load-to-use");
        assert_eq!(mean, 4.0);
        assert!((4.0 / 1.5..=4.0 * 1.5).contains(&p50));
        assert!((4.0 / 1.5..=4.0 * 1.5).contains(&p99));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        a.record(5);
        let mut b = LatencyHistogram::default();
        b.record(500);
        a += b;
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
        let mut empty = LatencyHistogram::default();
        empty += a;
        assert_eq!(empty.count(), 2);
        assert_eq!(
            empty.min(),
            5,
            "min survives merging into an empty histogram"
        );
    }

    #[test]
    fn breakdown_table_renders() {
        let mut b = LatencyBreakdown::default();
        b.load_to_use.record(3);
        b.barrier_wait.record(700);
        let txt = b.to_string();
        assert!(txt.contains("load-to-use"));
        assert!(txt.contains("barrier-wait"));
        assert!(txt.contains("sb-drain"));
        assert!(txt.contains("p99"));
    }
}
