//! Stable serialization of [`SimStats`]: an exact JSON round-trip (what
//! the result cache persists) and a flat CSV emit (what `sweep --out`
//! and the `matrix` subcommand write).
//!
//! Stability is the contract here: the JSON field set and the CSV column
//! order are part of the cache/CI interface, so both are generated from
//! one field list (`counts_fields!`) and pinned by tests. Energy values
//! are `f64` and use Rust's shortest round-trip formatting; every other
//! value is an exact `u64`.

use crate::hist::{LatencyBreakdown, LatencyHistogram, BUCKETS};
use crate::json::JsonValue;
use crate::msg::MsgClass;
use crate::stats::{Counts, EnergyBreakdown, SimStats, TrafficBreakdown};

/// Applies a macro to every [`Counts`] field, in declaration order.
/// Single source of truth for the JSON field set and CSV columns.
macro_rules! counts_fields {
    ($apply:ident) => {
        $apply!(
            instructions,
            cu_active_cycles,
            l1_accesses,
            l1_load_hits,
            l1_load_misses,
            l1_store_hits,
            l1_atomics,
            l1_atomic_hits,
            scratch_accesses,
            l2_accesses,
            l2_atomics,
            dram_reads,
            dram_writes,
            words_invalidated,
            flash_invalidations,
            sb_overflow_flushes,
            sb_release_flushes,
            registrations,
            reg_forwards,
            reg_queued,
            ownership_writebacks,
            registry_overflow_words,
            messages_sent,
            flit_hops
        )
    };
}

/// Stable machine-readable identifier for a traffic class (the display
/// labels — "Regist.", "WB/WT" — are unfit for CSV headers or JSON keys).
fn class_slug(cl: MsgClass) -> &'static str {
    match cl {
        MsgClass::Read => "read",
        MsgClass::Registration => "registration",
        MsgClass::WbWt => "wbwt",
        MsgClass::Atomic => "atomics",
    }
}

/// Energy components as `(json/csv name, accessor)` pairs.
type EnergyAccessor = fn(&EnergyBreakdown) -> f64;
const ENERGY_FIELDS: [(&str, EnergyAccessor); 5] = [
    ("core_pj", |e| e.core_pj),
    ("scratch_pj", |e| e.scratch_pj),
    ("l1_pj", |e| e.l1_pj),
    ("l2_pj", |e| e.l2_pj),
    ("noc_pj", |e| e.noc_pj),
];

fn counts_to_json(c: &Counts) -> JsonValue {
    macro_rules! emit {
        ($($f:ident),*) => {
            JsonValue::Obj(vec![$((stringify!($f).to_string(), JsonValue::num(c.$f))),*])
        };
    }
    counts_fields!(emit)
}

fn counts_from_json(v: &JsonValue) -> Result<Counts, String> {
    let mut c = Counts::default();
    macro_rules! read {
        ($($f:ident),*) => {
            $(
                c.$f = v
                    .get(stringify!($f))
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("counts.{} missing or not a u64", stringify!($f)))?;
            )*
        };
    }
    counts_fields!(read);
    Ok(c)
}

impl Counts {
    /// Serializes the counter record with the same stable field set and
    /// order as [`SimStats::to_json`] (per-CU profiler rows reuse this).
    pub fn to_json_value(&self) -> JsonValue {
        counts_to_json(self)
    }

    /// The inverse of [`Counts::to_json_value`].
    ///
    /// # Errors
    ///
    /// If any counter field is missing or not a `u64`.
    pub fn from_json_value(v: &JsonValue) -> Result<Counts, String> {
        counts_from_json(v)
    }
}

fn hist_to_json(h: &LatencyHistogram) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "buckets".into(),
            JsonValue::Arr(h.buckets().iter().map(JsonValue::num).collect()),
        ),
        ("sum".into(), JsonValue::num(h.sum())),
        ("min".into(), JsonValue::num(h.min())),
        ("max".into(), JsonValue::num(h.max())),
    ])
}

fn hist_from_json(v: &JsonValue) -> Result<LatencyHistogram, String> {
    let raw = v
        .get("buckets")
        .and_then(JsonValue::as_arr)
        .ok_or("histogram buckets missing")?;
    if raw.len() != BUCKETS {
        return Err(format!(
            "histogram has {} buckets, want {BUCKETS}",
            raw.len()
        ));
    }
    let mut counts = [0u64; BUCKETS];
    for (i, b) in raw.iter().enumerate() {
        counts[i] = b.as_u64().ok_or("bucket not a u64")?;
    }
    let field = |name: &str| {
        v.get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("histogram {name} missing"))
    };
    Ok(LatencyHistogram::from_raw(
        counts,
        field("sum")?,
        field("min")?,
        field("max")?,
    ))
}

impl SimStats {
    /// Serializes the complete statistics record as compact JSON. The
    /// output is deterministic (fixed field order) and round-trips
    /// exactly through [`SimStats::from_json`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// As [`SimStats::to_json`], but returns the tree for embedding in
    /// larger documents (cache files, `matrix --out` records).
    pub fn to_json_value(&self) -> JsonValue {
        let traffic = JsonValue::Obj(
            MsgClass::ALL
                .iter()
                .map(|&cl| {
                    (
                        class_slug(cl).to_string(),
                        JsonValue::num(self.traffic.class(cl)),
                    )
                })
                .collect(),
        );
        let energy = JsonValue::Obj(
            ENERGY_FIELDS
                .iter()
                .map(|&(name, get)| (name.to_string(), JsonValue::float(get(&self.energy))))
                .collect(),
        );
        let latency = JsonValue::Obj(
            self.latency
                .named()
                .iter()
                .map(|(name, h)| (name.to_string(), hist_to_json(h)))
                .collect(),
        );
        JsonValue::Obj(vec![
            ("cycles".into(), JsonValue::num(self.cycles)),
            ("counts".into(), counts_to_json(&self.counts)),
            ("traffic".into(), traffic),
            ("energy".into(), energy),
            ("latency".into(), latency),
        ])
    }

    /// Parses a record produced by [`SimStats::to_json`].
    pub fn from_json(text: &str) -> Result<SimStats, String> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// Parses a record from an already-parsed JSON tree.
    pub fn from_json_value(v: &JsonValue) -> Result<SimStats, String> {
        let cycles = v
            .get("cycles")
            .and_then(JsonValue::as_u64)
            .ok_or("cycles missing")?;
        let counts = counts_from_json(v.get("counts").ok_or("counts missing")?)?;

        let tv = v.get("traffic").ok_or("traffic missing")?;
        let mut traffic = TrafficBreakdown::default();
        for &cl in &MsgClass::ALL {
            let flits = tv
                .get(class_slug(cl))
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("traffic.{} missing", class_slug(cl)))?;
            traffic.flit_crossings[cl.index()] = flits;
        }

        let ev = v.get("energy").ok_or("energy missing")?;
        let mut energy = EnergyBreakdown::default();
        for &(name, _) in &ENERGY_FIELDS {
            let pj = ev
                .get(name)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("energy.{name} missing"))?;
            match name {
                "core_pj" => energy.core_pj = pj,
                "scratch_pj" => energy.scratch_pj = pj,
                "l1_pj" => energy.l1_pj = pj,
                "l2_pj" => energy.l2_pj = pj,
                "noc_pj" => energy.noc_pj = pj,
                _ => unreachable!(),
            }
        }

        let lv = v.get("latency").ok_or("latency missing")?;
        let latency = LatencyBreakdown {
            load_to_use: hist_from_json(lv.get("load-to-use").ok_or("load-to-use missing")?)?,
            atomic_rtt: hist_from_json(lv.get("atomic-rtt").ok_or("atomic-rtt missing")?)?,
            barrier_wait: hist_from_json(lv.get("barrier-wait").ok_or("barrier-wait missing")?)?,
            sb_drain: hist_from_json(lv.get("sb-drain").ok_or("sb-drain missing")?)?,
        };

        Ok(SimStats {
            cycles,
            counts,
            traffic,
            energy,
            latency,
        })
    }

    /// The CSV column names [`SimStats::csv_row`] emits, comma-joined.
    /// Callers prepend their own identifying columns (benchmark, config,
    /// scale).
    pub fn csv_header() -> String {
        let mut cols = vec!["cycles".to_string(), "energy_total_pj".to_string()];
        cols.extend(ENERGY_FIELDS.iter().map(|&(n, _)| format!("energy_{n}")));
        cols.push("traffic_total_flits".to_string());
        for cl in MsgClass::ALL {
            cols.push(format!("traffic_{}_flits", class_slug(cl)));
        }
        macro_rules! names {
            ($($f:ident),*) => { $(cols.push(stringify!($f).to_string());)* };
        }
        counts_fields!(names);
        cols.join(",")
    }

    /// One CSV row matching [`SimStats::csv_header`]. Deterministic:
    /// identical stats always print identical bytes.
    pub fn csv_row(&self) -> String {
        let mut cols = vec![
            self.cycles.to_string(),
            format!("{}", self.energy.total_pj()),
        ];
        cols.extend(
            ENERGY_FIELDS
                .iter()
                .map(|&(_, get)| format!("{}", get(&self.energy))),
        );
        cols.push(self.traffic.total().to_string());
        for cl in MsgClass::ALL {
            cols.push(self.traffic.class(cl).to_string());
        }
        let c = &self.counts;
        macro_rules! vals {
            ($($f:ident),*) => { $(cols.push(c.$f.to_string());)* };
        }
        counts_fields!(vals);
        cols.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        let mut s = SimStats {
            cycles: 123_456,
            ..SimStats::default()
        };
        s.counts.instructions = 999;
        s.counts.flit_hops = u64::MAX; // exactness check
        s.counts.reg_queued = 7;
        s.traffic.record(MsgClass::Read, 10, 3);
        s.traffic.record(MsgClass::Atomic, 2, 6);
        s.energy.core_pj = 1234.5678;
        s.energy.noc_pj = 0.125;
        s.latency.load_to_use.record(3);
        s.latency.load_to_use.record(900);
        s.latency.barrier_wait.record(40);
        s
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let text = s.to_json();
        let back = SimStats::from_json(&text).unwrap();
        assert_eq!(back, s);
        // And the re-serialization is byte-identical (stable ordering).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_stats_round_trip() {
        let s = SimStats::default();
        let back = SimStats::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.latency.load_to_use.min(), 0);
        assert!(back.latency.load_to_use.is_empty());
    }

    #[test]
    fn histogram_percentiles_survive_round_trip() {
        let s = sample();
        let back = SimStats::from_json(&s.to_json()).unwrap();
        assert_eq!(
            back.latency.load_to_use.percentile(50.0),
            s.latency.load_to_use.percentile(50.0)
        );
        assert_eq!(back.latency.load_to_use.count(), 2);
        assert_eq!(back.latency.load_to_use.max(), 900);
    }

    #[test]
    fn csv_header_and_row_align() {
        let s = sample();
        let header = SimStats::csv_header();
        let row = s.csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header and row column counts differ"
        );
        assert!(header.starts_with("cycles,energy_total_pj,"));
        assert!(row.starts_with("123456,"));
        // u64::MAX survives CSV too.
        assert!(row.ends_with(&u64::MAX.to_string()));
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        assert!(SimStats::from_json("{}").is_err());
        assert!(SimStats::from_json("not json").is_err());
        // A record with a missing counter field is rejected, not zeroed.
        let mut v = sample().to_json();
        v = v.replace("\"instructions\":999,", "");
        assert!(SimStats::from_json(&v).is_err());
    }
}
