//! Synchronization attributes: scopes, orderings, atomic operations, and
//! software regions.
//!
//! Under the DRF model every synchronization access is global; under HRF
//! (HRF-Indirect in the paper) each synchronization access additionally
//! carries a [`Scope`]. The paper's DD+RO configuration uses a single
//! software-conveyed read-only [`Region`] for selective invalidation.

use std::fmt;

/// The value type held in one machine word.
pub type Value = u32;

/// HRF synchronization scope (paper §3).
///
/// In the modelled two-level hierarchy there are exactly two scopes:
///
/// * [`Scope::Local`] — the thread blocks sharing one CU's L1 cache. A
///   locally scoped synchronization is performed at the L1 and does not
///   invalidate the cache or flush the store buffer.
/// * [`Scope::Global`] — all cores and CUs, synchronizing through the
///   shared L2. Under DRF *every* synchronization access has this scope.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Scope {
    /// Synchronizes only the thread blocks on this CU (shares the L1).
    Local,
    /// Synchronizes all cores and CUs (through the shared L2).
    Global,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Local => write!(f, "local"),
            Scope::Global => write!(f, "global"),
        }
    }
}

/// Ordering attribute of a synchronization access (DRF/HRF vocabulary).
///
/// The paper's program-order requirement (§2): an acquire must complete
/// before younger accesses issue; older data writes must complete before a
/// release; synchronization accesses are mutually ordered. Relaxed atomics
/// are deliberately not modelled (paper §5.3 disallows them).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SyncOrd {
    /// A synchronization read (e.g. a lock spin-load, a flag read).
    Acquire,
    /// A synchronization write (e.g. a lock release, a flag set).
    Release,
    /// A synchronization read-modify-write (e.g. the winning lock CAS).
    AcqRel,
}

impl SyncOrd {
    /// Whether this ordering has acquire semantics.
    #[inline]
    pub fn acquires(self) -> bool {
        matches!(self, SyncOrd::Acquire | SyncOrd::AcqRel)
    }

    /// Whether this ordering has release semantics.
    #[inline]
    pub fn releases(self) -> bool {
        matches!(self, SyncOrd::Release | SyncOrd::AcqRel)
    }
}

/// The atomic read-modify-write operations the simulated hardware supports
/// (at the L1 for DeNovo/locally scoped accesses, at the L2 otherwise).
///
/// These cover everything the Table-4 microbenchmarks need: ticket locks
/// (`Add`), spin locks (`Exch`/`Cas`), semaphores (`Cas`), barriers
/// (`Add`), work queues (`Add`, `Cas`), plus plain synchronization
/// loads/stores (`Read`/`Write`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AtomicOp {
    /// Synchronization load: returns the value, does not modify it.
    Read,
    /// Synchronization store of `operand[0]`.
    Write,
    /// Fetch-and-add of `operand[0]`; returns the old value.
    Add,
    /// Exchange with `operand[0]`; returns the old value.
    Exch,
    /// Compare-and-swap: if current == `operand[0]`, store `operand[1]`.
    /// Returns the old value (success iff old == `operand[0]`).
    Cas,
    /// Fetch-and-min of `operand[0]`; returns the old value.
    Min,
    /// Fetch-and-max of `operand[0]`; returns the old value.
    Max,
}

impl AtomicOp {
    /// Applies the operation to `current`, returning
    /// `(new_value, returned_old_value)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use gsim_types::AtomicOp;
    ///
    /// assert_eq!(AtomicOp::Add.apply(5, [3, 0]), (8, 5));
    /// assert_eq!(AtomicOp::Cas.apply(0, [0, 1]), (1, 0)); // success
    /// assert_eq!(AtomicOp::Cas.apply(7, [0, 1]), (7, 7)); // failure
    /// assert_eq!(AtomicOp::Read.apply(9, [0, 0]), (9, 9));
    /// ```
    pub fn apply(self, current: Value, operands: [Value; 2]) -> (Value, Value) {
        let old = current;
        let new = match self {
            AtomicOp::Read => current,
            AtomicOp::Write => operands[0],
            AtomicOp::Add => current.wrapping_add(operands[0]),
            AtomicOp::Exch => operands[0],
            AtomicOp::Cas => {
                if current == operands[0] {
                    operands[1]
                } else {
                    current
                }
            }
            AtomicOp::Min => current.min(operands[0]),
            AtomicOp::Max => current.max(operands[0]),
        };
        (new, old)
    }

    /// Whether the operation can modify memory (everything but `Read`).
    #[inline]
    pub fn writes(self) -> bool {
        !matches!(self, AtomicOp::Read)
    }
}

/// Software data region, the DD+RO enhancement's program-level annotation.
///
/// The paper (§3, §4.2) adds a single *read-only* region to DeNovo-D:
/// loads tagged `ReadOnly` (conveyed in real hardware through an opcode
/// bit) bring data in as read-only, and such words are *not* invalidated
/// at acquires. The property is hardware-oblivious — unlike an HRF scope
/// it says something about the program, not about the memory hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Region {
    /// Ordinary read-write data.
    #[default]
    Default,
    /// Data that is never written during the phase (kernel) that reads it.
    ReadOnly,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_semantics() {
        assert!(SyncOrd::Acquire.acquires() && !SyncOrd::Acquire.releases());
        assert!(!SyncOrd::Release.acquires() && SyncOrd::Release.releases());
        assert!(SyncOrd::AcqRel.acquires() && SyncOrd::AcqRel.releases());
    }

    #[test]
    fn atomic_ops() {
        assert_eq!(AtomicOp::Write.apply(1, [9, 0]), (9, 1));
        assert_eq!(AtomicOp::Exch.apply(4, [2, 0]), (2, 4));
        assert_eq!(AtomicOp::Min.apply(4, [2, 0]), (2, 4));
        assert_eq!(AtomicOp::Max.apply(4, [2, 0]), (4, 4));
        assert_eq!(AtomicOp::Add.apply(u32::MAX, [1, 0]), (0, u32::MAX)); // wraps
        assert!(!AtomicOp::Read.writes());
        assert!(AtomicOp::Cas.writes());
    }
}
