//! A small, deterministic pseudo-random number generator for workload
//! generation and randomized testing.
//!
//! The simulator is fully deterministic and self-contained; pulling in an
//! external RNG crate for the handful of seeded generators the workloads
//! and tests need would be the repository's only third-party dependency.
//! [`Rng64`] is a SplitMix64 generator — the standard seeding generator
//! from Steele et al., *Fast splittable pseudorandom number generators*
//! (OOPSLA 2014) — which passes BigCrush and is more than adequate for
//! generating test inputs and unbalanced trees.
//!
//! Determinism is load-bearing: the same seed must produce the same
//! workload on every platform and in every run, because host-side
//! expected results are computed from the same generator stream.

/// A seeded SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use gsim_types::Rng64;
///
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let x = a.gen_u32(10, 20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed. Distinct seeds give
    /// statistically independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next raw 32-bit output (the high half, which mixes best).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi)` via widening multiply (Lemire's
    /// nearly-divisionless method, without the rejection step — the bias
    /// is ≤ 2⁻⁶⁴ · span, irrelevant for test-input generation).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_u64(lo as u64, hi as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng64::seed_from_u64(0xDEAD_BEEF);
        let mut b = Rng64::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference outputs for seed 0 from the canonical C implementation.
        let mut r = Rng64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::seed_from_u64(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_u32(5, 13);
            assert!((5..13).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 12;
        }
        assert!(seen_lo && seen_hi, "both endpoints reachable");
        assert_eq!(r.gen_usize(3, 4), 3, "singleton range");
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Rng64::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_usize(0, 10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seed_from_u64(0).gen_u32(5, 5);
    }
}
