//! Statistics: everything behind the paper's figures.
//!
//! Each figure reports three metrics per benchmark and configuration:
//! execution time (cycles), dynamic energy split into five components
//! ([`EnergyBreakdown`]), and network traffic in flit crossings split into
//! four classes ([`TrafficBreakdown`]). [`Counts`] holds the raw event
//! counters every component increments during simulation; the energy model
//! (crate `gsim-energy`) converts counts into an [`EnergyBreakdown`].

use crate::hist::LatencyBreakdown;
use crate::msg::MsgClass;
use std::fmt;
use std::ops::AddAssign;

/// Network traffic in flit crossings (flits x links traversed), by class.
///
/// This is the paper's Figure 2c/3c/4c metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// Flit crossings per [`MsgClass`], indexed by [`MsgClass::index`].
    pub flit_crossings: [u64; 4],
}

impl TrafficBreakdown {
    /// Records `flits` flits traversing `hops` links for class `class`.
    #[inline]
    pub fn record(&mut self, class: MsgClass, flits: u32, hops: u32) {
        self.flit_crossings[class.index()] += flits as u64 * hops as u64;
    }

    /// Flit crossings for one class.
    #[inline]
    pub fn class(&self, class: MsgClass) -> u64 {
        self.flit_crossings[class.index()]
    }

    /// Total flit crossings across all classes.
    pub fn total(&self) -> u64 {
        self.flit_crossings.iter().sum()
    }

    /// Flit crossings for the non-atomic (data) classes.
    pub fn data_total(&self) -> u64 {
        self.total() - self.class(MsgClass::Atomic)
    }
}

impl AddAssign for TrafficBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..4 {
            self.flit_crossings[i] += rhs.flit_crossings[i];
        }
    }
}

/// Dynamic energy by component, in picojoules.
///
/// This is the paper's Figure 2b/3b/4b breakdown: "GPU core+" (instruction
/// cache, register file, FPU, scheduler, pipeline), scratchpad, L1 data
/// cache, L2 cache, and network. The CPU core is functionally simulated
/// and carries no energy, exactly as in the paper.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// GPU core+ (pipeline, register file, scheduler, FPU, i-cache).
    pub core_pj: f64,
    /// Scratchpad accesses.
    pub scratch_pj: f64,
    /// L1 data cache accesses (including flash-invalidate operations).
    pub l1_pj: f64,
    /// L2 cache/registry bank accesses.
    pub l2_pj: f64,
    /// Network routers and links, per flit-hop.
    pub noc_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.scratch_pj + self.l1_pj + self.l2_pj + self.noc_pj
    }

    /// The memory-system share (L1 + L2 + network), the components the
    /// paper reports decreasing by 71% for GPU-H on local-sync benchmarks.
    pub fn memory_system_pj(&self) -> f64 {
        self.l1_pj + self.l2_pj + self.noc_pj
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.core_pj += rhs.core_pj;
        self.scratch_pj += rhs.scratch_pj;
        self.l1_pj += rhs.l1_pj;
        self.l2_pj += rhs.l2_pj;
        self.noc_pj += rhs.noc_pj;
    }
}

/// Raw event counters incremented by the simulator's components.
///
/// All counters are totals across the whole run (all kernels).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Instructions interpreted by thread blocks (all kinds).
    pub instructions: u64,
    /// Cycles during which at least one thread block was resident on a CU.
    pub cu_active_cycles: u64,
    /// L1 data-cache accesses (tag + data array), loads and stores.
    pub l1_accesses: u64,
    /// L1 load hits.
    pub l1_load_hits: u64,
    /// L1 load misses.
    pub l1_load_misses: u64,
    /// Stores that hit an owned (registered/dirty) word in the L1.
    pub l1_store_hits: u64,
    /// Atomic operations performed at an L1.
    pub l1_atomics: u64,
    /// Atomic operations that hit (registered word / local scope) at an L1.
    pub l1_atomic_hits: u64,
    /// Scratchpad accesses.
    pub scratch_accesses: u64,
    /// L2 bank accesses (data or registry operations).
    pub l2_accesses: u64,
    /// Atomic operations performed at an L2 bank.
    pub l2_atomics: u64,
    /// DRAM line reads.
    pub dram_reads: u64,
    /// DRAM line writes.
    pub dram_writes: u64,
    /// Words invalidated by acquire-induced self-invalidation.
    pub words_invalidated: u64,
    /// Full-cache flash invalidations (GPU acquires).
    pub flash_invalidations: u64,
    /// Store-buffer entries flushed because the buffer was full.
    pub sb_overflow_flushes: u64,
    /// Store-buffer entries flushed at releases/kernel boundaries.
    pub sb_release_flushes: u64,
    /// Ownership (registration) requests issued by L1s.
    pub registrations: u64,
    /// Registration requests forwarded to a remote owner L1 (extra hop).
    pub reg_forwards: u64,
    /// Registration forwards that queued at a pending owner (the
    /// DeNovoSync0 distributed queue).
    pub reg_queued: u64,
    /// Owned words written back on L1 eviction.
    pub ownership_writebacks: u64,
    /// Owned words whose registry entries spilled to the registry
    /// overflow table on an L2 bank eviction (see DESIGN.md §6).
    pub registry_overflow_words: u64,
    /// Messages injected into the network.
    pub messages_sent: u64,
    /// Flit-hops traversed (total, all classes).
    pub flit_hops: u64,
}

impl Counts {
    /// L1 load hit rate in `[0, 1]`; `None` when there were no loads.
    pub fn l1_load_hit_rate(&self) -> Option<f64> {
        let total = self.l1_load_hits + self.l1_load_misses;
        (total > 0).then(|| self.l1_load_hits as f64 / total as f64)
    }

    /// Fraction of L1 atomics that hit; `None` when there were none.
    pub fn l1_atomic_hit_rate(&self) -> Option<f64> {
        (self.l1_atomics > 0).then(|| self.l1_atomic_hits as f64 / self.l1_atomics as f64)
    }
}

impl AddAssign for Counts {
    fn add_assign(&mut self, rhs: Self) {
        self.instructions += rhs.instructions;
        self.cu_active_cycles += rhs.cu_active_cycles;
        self.l1_accesses += rhs.l1_accesses;
        self.l1_load_hits += rhs.l1_load_hits;
        self.l1_load_misses += rhs.l1_load_misses;
        self.l1_store_hits += rhs.l1_store_hits;
        self.l1_atomics += rhs.l1_atomics;
        self.l1_atomic_hits += rhs.l1_atomic_hits;
        self.scratch_accesses += rhs.scratch_accesses;
        self.l2_accesses += rhs.l2_accesses;
        self.l2_atomics += rhs.l2_atomics;
        self.dram_reads += rhs.dram_reads;
        self.dram_writes += rhs.dram_writes;
        self.words_invalidated += rhs.words_invalidated;
        self.flash_invalidations += rhs.flash_invalidations;
        self.sb_overflow_flushes += rhs.sb_overflow_flushes;
        self.sb_release_flushes += rhs.sb_release_flushes;
        self.registrations += rhs.registrations;
        self.reg_forwards += rhs.reg_forwards;
        self.reg_queued += rhs.reg_queued;
        self.ownership_writebacks += rhs.ownership_writebacks;
        self.registry_overflow_words += rhs.registry_overflow_words;
        self.messages_sent += rhs.messages_sent;
        self.flit_hops += rhs.flit_hops;
    }
}

/// Results of a complete simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Execution time in GPU cycles (kernel launch to completion, summed
    /// over all kernels).
    pub cycles: u64,
    /// Raw event counters.
    pub counts: Counts,
    /// Network traffic by class.
    pub traffic: TrafficBreakdown,
    /// Dynamic energy by component (filled by the energy model).
    pub energy: EnergyBreakdown,
    /// Latency histograms (always recorded; see [`LatencyBreakdown`]).
    pub latency: LatencyBreakdown,
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles: {}", self.cycles)?;
        writeln!(
            f,
            "traffic (flit crossings): total {} [read {} / reg {} / wb-wt {} / atomics {}]",
            self.traffic.total(),
            self.traffic.class(MsgClass::Read),
            self.traffic.class(MsgClass::Registration),
            self.traffic.class(MsgClass::WbWt),
            self.traffic.class(MsgClass::Atomic),
        )?;
        writeln!(
            f,
            "energy (nJ): total {:.1} [core {:.1} / scratch {:.1} / l1 {:.1} / l2 {:.1} / noc {:.1}]",
            self.energy.total_pj() / 1e3,
            self.energy.core_pj / 1e3,
            self.energy.scratch_pj / 1e3,
            self.energy.l1_pj / 1e3,
            self.energy.l2_pj / 1e3,
            self.energy.noc_pj / 1e3,
        )?;
        write!(
            f,
            "l1 load hit rate: {}, l1 atomic hit rate: {}",
            match self.counts.l1_load_hit_rate() {
                Some(r) => format!("{:.1}%", r * 100.0),
                None => "n/a".to_string(),
            },
            match self.counts.l1_atomic_hit_rate() {
                Some(r) => format!("{:.1}%", r * 100.0),
                None => "n/a".to_string(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accounting() {
        let mut t = TrafficBreakdown::default();
        t.record(MsgClass::Read, 5, 3);
        t.record(MsgClass::Atomic, 1, 6);
        t.record(MsgClass::Read, 2, 0); // local delivery crosses no links
        assert_eq!(t.class(MsgClass::Read), 15);
        assert_eq!(t.class(MsgClass::Atomic), 6);
        assert_eq!(t.total(), 21);
        assert_eq!(t.data_total(), 15);
        let mut u = t;
        u += t;
        assert_eq!(u.total(), 42);
    }

    #[test]
    fn energy_totals() {
        let e = EnergyBreakdown {
            core_pj: 1.0,
            scratch_pj: 2.0,
            l1_pj: 3.0,
            l2_pj: 4.0,
            noc_pj: 5.0,
        };
        assert_eq!(e.total_pj(), 15.0);
        assert_eq!(e.memory_system_pj(), 12.0);
        let mut f = e;
        f += e;
        assert_eq!(f.total_pj(), 30.0);
    }

    #[test]
    fn hit_rates() {
        let mut c = Counts::default();
        assert!(c.l1_load_hit_rate().is_none());
        assert!(c.l1_atomic_hit_rate().is_none());
        c.l1_load_hits = 3;
        c.l1_load_misses = 1;
        c.l1_atomics = 10;
        c.l1_atomic_hits = 9;
        assert_eq!(c.l1_load_hit_rate(), Some(0.75));
        assert_eq!(c.l1_atomic_hit_rate(), Some(0.9));
    }

    #[test]
    fn counts_aggregate() {
        let mut a = Counts {
            instructions: 5,
            flit_hops: 7,
            ..Counts::default()
        };
        let b = Counts {
            instructions: 2,
            reg_queued: 4,
            ..Counts::default()
        };
        a += b;
        assert_eq!(a.instructions, 7);
        assert_eq!(a.reg_queued, 4);
        assert_eq!(a.flit_hops, 7);
    }

    #[test]
    fn stats_display_mentions_key_fields() {
        let s = SimStats {
            cycles: 42,
            ..SimStats::default()
        };
        let txt = s.to_string();
        assert!(txt.contains("cycles: 42"));
        assert!(txt.contains("flit crossings"));
        assert!(txt.contains("n/a"));
    }
}
