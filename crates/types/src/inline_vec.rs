//! A small-vector that keeps the first `N` elements inline, heap-free.
//!
//! Protocol controllers return a list of actions from every operation,
//! and almost every list has 0-3 entries — but `Vec` puts even one
//! entry on the heap, so the simulator used to pay an allocation per
//! simulated memory access. [`InlineVec`] stores up to `N` elements in
//! the struct itself and only spills to a `Vec` beyond that, making the
//! common dispatch path allocation-free.
//!
//! Deliberately minimal and `unsafe`-free: elements must be `Copy +
//! Default` (the inline array is filler-initialized). On overflow the
//! whole contents move to the spill `Vec` so the elements always live
//! in one contiguous slice.
//!
//! # Examples
//!
//! ```
//! use gsim_types::InlineVec;
//!
//! let mut v: InlineVec<u32, 4> = InlineVec::new();
//! v.push(1);
//! v.push(2);
//! assert_eq!(v.as_slice(), &[1, 2]);          // inline, no allocation
//! v.extend([3, 4, 5]);                        // fifth element spills
//! assert_eq!(v.iter().sum::<u32>(), 15);
//! assert_eq!(v.into_iter().count(), 5);
//! ```

use std::fmt;

/// A contiguous growable list holding up to `N` elements inline.
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    /// Number of live elements in `inline` (0 once spilled).
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty list (no heap allocation).
    #[inline]
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// A list holding exactly one element — the most common controller
    /// return shape.
    #[inline]
    pub fn of(item: T) -> Self {
        let mut v = Self::new();
        v.push(item);
        v
    }

    /// Appends an element, spilling to the heap only past `N` elements.
    #[inline]
    pub fn push(&mut self, item: T) {
        if !self.spill.is_empty() {
            self.spill.push(item);
        } else if self.len < N {
            self.inline[self.len] = item;
            self.len += 1;
        } else {
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..self.len]);
            self.spill.push(item);
            self.len = 0;
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len
        } else {
            self.spill.len()
        }
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// The elements as one contiguous slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Iterates over the elements by reference.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Removes all elements, keeping any spill capacity for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Moves every element of `other` onto the end of `self`.
    #[inline]
    pub fn append(&mut self, other: &Self) {
        for &item in other.iter() {
            self.push(item);
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        v.extend(iter);
        v
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N>
where
    T: Copy + Default,
{
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<&[T]> for InlineVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// By-value iteration: inline elements are copied out, spilled elements
/// drain the `Vec`.
pub struct InlineVecIter<T, const N: usize> {
    vec: InlineVec<T, N>,
    next: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for InlineVecIter<T, N> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        let item = self.vec.as_slice().get(self.next).copied();
        self.next += item.is_some() as usize;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.vec.len() - self.next;
        (left, Some(left))
    }
}

impl<T: Copy + Default, const N: usize> ExactSizeIterator for InlineVecIter<T, N> {}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = InlineVecIter<T, N>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        InlineVecIter { vec: self, next: 0 }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn empty_and_single() {
        let v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.as_slice(), &[]);
        let one = InlineVec::<u32, 4>::of(9);
        assert_eq!(one.as_slice(), &[9]);
    }

    #[test]
    fn spill_preserves_order_and_contents() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..20 {
            v.push(i);
        }
        assert_eq!(v.len(), 20);
        assert_eq!(v.as_slice(), (0..20).collect::<Vec<_>>().as_slice());
        assert_eq!(
            v.into_iter().collect::<Vec<_>>(),
            (0..20).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_reuses_without_losing_elements() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.extend([1, 2, 3]);
        v.clear();
        assert!(v.is_empty());
        v.push(7);
        assert_eq!(v.as_slice(), &[7]);
    }

    #[test]
    fn append_and_from_vec() {
        let mut a: InlineVec<u32, 4> = InlineVec::of(1);
        let b: InlineVec<u32, 4> = vec![2, 3, 4, 5, 6].into();
        a.append(&b);
        assert_eq!(a.as_slice(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn matches_vec_model_under_random_ops() {
        let mut rng = Rng64::seed_from_u64(0x1111);
        for _ in 0..64 {
            let mut v: InlineVec<u64, 3> = InlineVec::new();
            let mut model: Vec<u64> = Vec::new();
            for _ in 0..rng.gen_usize(1, 64) {
                if rng.gen_u32(0, 8) == 0 {
                    v.clear();
                    model.clear();
                } else {
                    let x = rng.gen_u64(0, 1000);
                    v.push(x);
                    model.push(x);
                }
                assert_eq!(v.as_slice(), model.as_slice());
                assert_eq!(v.len(), model.len());
            }
            assert_eq!(v.iter().copied().collect::<Vec<_>>(), model);
        }
    }
}
