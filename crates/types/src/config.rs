//! The five protocol/consistency configurations of the paper (§5.3).

use std::fmt;

/// Which coherence protocol family a configuration uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Coherence {
    /// Conventional GPU software coherence: reader-initiated full-cache
    /// invalidation, buffered writethroughs, no ownership (paper §3).
    Gpu,
    /// DeNovo hybrid coherence: reader-initiated selective invalidation,
    /// hardware-tracked ownership (registration) at word granularity,
    /// DeNovoSync0 synchronization (paper §3).
    DeNovo,
}

/// Which memory consistency model a configuration assumes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Consistency {
    /// Data-race-free: SC for DRF programs, no scopes (paper §2).
    Drf,
    /// Heterogeneous-race-free (HRF-Indirect): scoped synchronization
    /// (paper §2); locally scoped sync accesses execute at the L1 without
    /// invalidations or flushes.
    Hrf,
}

/// One of the five studied configurations.
///
/// | Variant | Paper name | Coherence | Consistency |
/// |---|---|---|---|
/// | [`Gd`](ProtocolConfig::Gd) | GPU-D | GPU | DRF |
/// | [`Gh`](ProtocolConfig::Gh) | GPU-H | GPU | HRF |
/// | [`Dd`](ProtocolConfig::Dd) | DeNovo-D | DeNovo | DRF |
/// | [`DdRo`](ProtocolConfig::DdRo) | DeNovo-D+RO | DeNovo | DRF + read-only region |
/// | [`Dh`](ProtocolConfig::Dh) | DeNovo-H | DeNovo | HRF |
///
/// # Examples
///
/// ```
/// use gsim_types::{ProtocolConfig, Coherence, Consistency};
///
/// let c = ProtocolConfig::Dd;
/// assert_eq!(c.coherence(), Coherence::DeNovo);
/// assert_eq!(c.consistency(), Consistency::Drf);
/// assert!(!c.read_only_region());
/// assert_eq!(c.to_string(), "DD");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProtocolConfig {
    /// GPU coherence, DRF consistency: all synchronization at the L2.
    Gd,
    /// GPU coherence, HRF consistency: locally scoped synchronization at
    /// the L1s, globally scoped at the L2.
    Gh,
    /// DeNovo coherence (DeNovoSync0, no regions), DRF consistency: all
    /// synchronization at the L1 after registration.
    Dd,
    /// DeNovo-D plus the read-only region enhancement: valid read-only
    /// data is not invalidated at acquires.
    DdRo,
    /// DeNovo coherence with the HRF-Indirect model: ownership *and*
    /// scoped synchronization.
    Dh,
}

impl ProtocolConfig {
    /// All five configurations, in the paper's presentation order.
    pub const ALL: [ProtocolConfig; 5] = [
        ProtocolConfig::Gd,
        ProtocolConfig::Gh,
        ProtocolConfig::Dd,
        ProtocolConfig::DdRo,
        ProtocolConfig::Dh,
    ];

    /// The coherence protocol family.
    pub fn coherence(self) -> Coherence {
        match self {
            ProtocolConfig::Gd | ProtocolConfig::Gh => Coherence::Gpu,
            _ => Coherence::DeNovo,
        }
    }

    /// The consistency model.
    pub fn consistency(self) -> Consistency {
        match self {
            ProtocolConfig::Gh | ProtocolConfig::Dh => Consistency::Hrf,
            _ => Consistency::Drf,
        }
    }

    /// Whether the read-only region enhancement is enabled.
    pub fn read_only_region(self) -> bool {
        self == ProtocolConfig::DdRo
    }

    /// Whether locally scoped synchronization is honoured (HRF models).
    ///
    /// Under DRF, scope annotations in a program are ignored and every
    /// synchronization access behaves as globally scoped.
    pub fn honours_scopes(self) -> bool {
        self.consistency() == Consistency::Hrf
    }

    /// The paper's abbreviation for this configuration.
    pub fn abbrev(self) -> &'static str {
        match self {
            ProtocolConfig::Gd => "GD",
            ProtocolConfig::Gh => "GH",
            ProtocolConfig::Dd => "DD",
            ProtocolConfig::DdRo => "DD+RO",
            ProtocolConfig::Dh => "DH",
        }
    }

    /// The paper's long name for this configuration.
    pub fn paper_name(self) -> &'static str {
        match self {
            ProtocolConfig::Gd => "GPU-D",
            ProtocolConfig::Gh => "GPU-H",
            ProtocolConfig::Dd => "DeNovo-D",
            ProtocolConfig::DdRo => "DeNovo-D+RO",
            ProtocolConfig::Dh => "DeNovo-H",
        }
    }
}

impl fmt::Display for ProtocolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families() {
        assert_eq!(ProtocolConfig::Gd.coherence(), Coherence::Gpu);
        assert_eq!(ProtocolConfig::Gh.coherence(), Coherence::Gpu);
        assert_eq!(ProtocolConfig::Dd.coherence(), Coherence::DeNovo);
        assert_eq!(ProtocolConfig::DdRo.coherence(), Coherence::DeNovo);
        assert_eq!(ProtocolConfig::Dh.coherence(), Coherence::DeNovo);
    }

    #[test]
    fn models() {
        assert!(!ProtocolConfig::Gd.honours_scopes());
        assert!(ProtocolConfig::Gh.honours_scopes());
        assert!(!ProtocolConfig::Dd.honours_scopes());
        assert!(!ProtocolConfig::DdRo.honours_scopes());
        assert!(ProtocolConfig::Dh.honours_scopes());
        assert!(ProtocolConfig::DdRo.read_only_region());
        assert!(!ProtocolConfig::Dh.read_only_region());
    }

    #[test]
    fn names() {
        for c in ProtocolConfig::ALL {
            assert!(!c.abbrev().is_empty());
            assert!(!c.paper_name().is_empty());
        }
        assert_eq!(ProtocolConfig::DdRo.to_string(), "DD+RO");
    }
}
