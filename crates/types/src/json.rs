//! A minimal, dependency-free JSON value: parse, build, and print.
//!
//! The repository is deliberately free of third-party crates (the build
//! must work offline), but the result cache and the machine-readable
//! sweep outputs need a real JSON round-trip — hand-rolled emitters are
//! easy, hand-rolled *parsers* scattered per call site are not. This
//! module is the one shared implementation: a [`JsonValue`] tree, a
//! recursive-descent [`JsonValue::parse`], and a compact printer.
//!
//! Numbers keep their source text ([`JsonValue::Num`] holds the token,
//! not an `f64`), so `u64` counters round-trip exactly — cache
//! fingerprints depend on that.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token so integers never lose
    /// precision through an `f64` round-trip.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved (stable output).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds a number value from anything displayable as a JSON number.
    pub fn num(n: impl fmt::Display) -> JsonValue {
        JsonValue::Num(n.to_string())
    }

    /// Builds a number value from an `f64` using Rust's shortest
    /// round-trip formatting (`{:?}` semantics via `Display` on f64).
    pub fn float(f: f64) -> JsonValue {
        // `{}` on f64 is the shortest representation that round-trips.
        JsonValue::Num(format!("{f}"))
    }

    /// The value as `u64`, if it is an integral number token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            ch as char,
            *pos,
            b.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if tok.is_empty() || tok.parse::<f64>().is_err() {
        return Err(format!("invalid number {tok:?} at byte {start}"));
    }
    Ok(JsonValue::Num(tok.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + len]).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for JsonValue {
    /// Compact single-line rendering (no spaces), stable field order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => f.write_str(n),
            JsonValue::Str(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"a":1,"b":[1,2,3],"c":{"d":"x","e":true,"f":null},"g":-1.5e3}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("g").unwrap().as_f64(), Some(-1500.0));
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX;
        let v = JsonValue::parse(&format!("{{\"x\":{big}}}")).unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn string_escapes() {
        let v = JsonValue::Str("a\"b\\c\nd".into());
        let printed = v.to_string();
        assert_eq!(printed, r#""a\"b\\c\nd""#);
        assert_eq!(JsonValue::parse(&printed).unwrap(), v);
        // Unicode escape decodes.
        assert_eq!(JsonValue::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} x").is_err());
        assert!(JsonValue::parse("nope").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn float_formatting_round_trips() {
        for f in [0.0, 1.5, 123.456, 1e-9, 987654321.123] {
            let v = JsonValue::float(f);
            assert_eq!(JsonValue::parse(&v.to_string()).unwrap().as_f64(), Some(f));
        }
    }
}
