//! Identifiers for nodes, requests, thread blocks, and simulated time.

use std::fmt;

/// Simulated time, in GPU clock cycles (700 MHz in the paper's Table 3).
pub type Cycle = u64;

/// A network-node identifier on the 4x4 mesh.
///
/// The modelled system (paper Figure 1) places one L1 cache and one bank of
/// the shared NUCA L2 at each of 16 nodes; nodes `0..15` host GPU compute
/// units (with scratchpads) and node `15` hosts the single CPU core.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u8);

impl NodeId {
    /// Number of mesh nodes in the baseline system.
    pub const COUNT: usize = 16;
    /// Number of GPU compute units (paper Table 3).
    pub const GPU_CUS: usize = 15;
    /// The CPU core's node.
    pub const CPU: NodeId = NodeId(15);

    /// All node ids, in order.
    pub fn all() -> impl Iterator<Item = NodeId> {
        (0..Self::COUNT as u8).map(NodeId)
    }

    /// All GPU CU node ids, in order.
    pub fn gpu_cus() -> impl Iterator<Item = NodeId> {
        (0..Self::GPU_CUS as u8).map(NodeId)
    }

    /// Whether this node hosts a GPU compute unit.
    #[inline]
    pub fn is_gpu(self) -> bool {
        (self.0 as usize) < Self::GPU_CUS
    }

    /// This node's index as a `usize` (for array indexing).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::CPU {
            write!(f, "cpu")
        } else {
            write!(f, "cu{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A unique transaction identifier minted by the simulation engine.
///
/// Every core-initiated memory operation that can block a thread block
/// (loads, atomics, fences/releases) carries a `ReqId`; protocol controllers
/// echo it back in completion actions so the engine can resume the right
/// thread block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

impl fmt::Debug for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// A thread-block identifier, global across the kernel launch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TbId(pub u32);

impl fmt::Debug for TbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tb{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_roles() {
        assert_eq!(NodeId::all().count(), 16);
        assert_eq!(NodeId::gpu_cus().count(), 15);
        assert!(NodeId(0).is_gpu());
        assert!(NodeId(14).is_gpu());
        assert!(!NodeId::CPU.is_gpu());
        assert_eq!(format!("{:?}", NodeId(3)), "cu3");
        assert_eq!(format!("{:?}", NodeId::CPU), "cpu");
    }
}
