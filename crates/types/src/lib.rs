#![warn(missing_docs)]

//! Shared vocabulary for the `gpu-denovo` simulator.
//!
//! This crate defines the types every other `gsim-*` crate speaks:
//! word/line [addressing](addr), [node identifiers](ids), the
//! [synchronization attributes](sync) of the DRF and HRF consistency
//! models, the [coherence message taxonomy](msg), the five
//! [protocol configurations](config) studied by the paper, and the
//! [statistics counters](stats) behind every figure.
//!
//! The geometry constants match the paper's Table 3: 4-byte words and
//! 64-byte cache lines (16 words per line, like a sector cache — DeNovo
//! keeps *tags* at line granularity but *coherence state* at word
//! granularity).
//!
//! # Examples
//!
//! ```
//! use gsim_types::{Addr, WordAddr, LineAddr, WORDS_PER_LINE};
//!
//! let a = Addr(0x1040);
//! let w: WordAddr = a.word();
//! assert_eq!(w.index_in_line(), 0);
//! let l: LineAddr = a.line();
//! assert_eq!(l.word(0).addr(), Addr(0x1040));
//! assert_eq!(WORDS_PER_LINE, 16);
//! ```

pub mod addr;
pub mod config;
pub mod fxhash;
pub mod hist;
pub mod ids;
pub mod inline_vec;
pub mod json;
pub mod msg;
pub mod rng;
pub mod serial;
pub mod stats;
pub mod sync;

pub use addr::{Addr, LineAddr, WordAddr, WordMask, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use config::{Coherence, Consistency, ProtocolConfig};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hist::{LatencyBreakdown, LatencyHistogram};
pub use ids::{Cycle, NodeId, ReqId, TbId};
pub use inline_vec::InlineVec;
pub use json::JsonValue;
pub use msg::{Component, Msg, MsgClass, MsgKind, CTRL_FLITS, FLIT_BYTES};
pub use rng::Rng64;
pub use stats::{Counts, EnergyBreakdown, SimStats, TrafficBreakdown};
pub use sync::{AtomicOp, Region, Scope, SyncOrd, Value};
