//! Byte, word, and line addressing.
//!
//! The simulator fixes the paper's geometry: 4-byte words, 64-byte lines
//! (16 words). Coherence state is kept per *word*; tags and transfers are
//! per *line* (DeNovo decouples the two, GPU coherence moves whole lines).

use std::fmt;

/// Bytes per machine word (the paper's coherence granularity for DeNovo).
pub const WORD_BYTES: u64 = 4;
/// Bytes per cache line (tag granularity for every protocol).
pub const LINE_BYTES: u64 = 64;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;

/// A byte address in the unified CPU-GPU address space.
///
/// Addresses used for memory operations must be word aligned; none of the
/// paper's benchmarks perform byte-granularity accesses (paper footnote 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A word-granularity address (`byte address / 4`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(pub u64);

/// A line-granularity address (`byte address / 64`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The word containing this address.
    #[inline]
    pub fn word(self) -> WordAddr {
        WordAddr(self.0 / WORD_BYTES)
    }

    /// The line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Whether the address is word aligned.
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }
}

impl WordAddr {
    /// The line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / WORDS_PER_LINE as u64)
    }

    /// Index of this word within its line (`0..WORDS_PER_LINE`).
    #[inline]
    pub fn index_in_line(self) -> usize {
        (self.0 % WORDS_PER_LINE as u64) as usize
    }

    /// The byte address of this word.
    #[inline]
    pub fn addr(self) -> Addr {
        Addr(self.0 * WORD_BYTES)
    }
}

impl LineAddr {
    /// The `i`-th word of this line.
    ///
    /// # Panics
    ///
    /// Panics if `i >= WORDS_PER_LINE`.
    #[inline]
    pub fn word(self, i: usize) -> WordAddr {
        assert!(i < WORDS_PER_LINE, "word index {i} out of line");
        WordAddr(self.0 * WORDS_PER_LINE as u64 + i as u64)
    }

    /// The byte address of the first word of this line.
    #[inline]
    pub fn base_addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Debug for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WordAddr({:#x}.{})", self.line().0, self.index_in_line())
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A per-line word bitmask: bit `i` refers to word `i` of a line.
///
/// Used throughout the coherence messages to express which words of a line
/// a request, response, or writeback covers — this is how DeNovo decouples
/// the coherence granularity (words) from the tag granularity (lines).
///
/// # Examples
///
/// ```
/// use gsim_types::WordMask;
///
/// let m = WordMask::single(3) | WordMask::single(7);
/// assert_eq!(m.count(), 2);
/// assert!(m.contains(3));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![3, 7]);
/// assert_eq!(WordMask::full().count(), 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WordMask(pub u16);

impl WordMask {
    /// The empty mask.
    #[inline]
    pub fn empty() -> Self {
        WordMask(0)
    }

    /// The mask covering all words of a line.
    #[inline]
    pub fn full() -> Self {
        WordMask(u16::MAX)
    }

    /// The mask covering only word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= WORDS_PER_LINE`.
    #[inline]
    pub fn single(i: usize) -> Self {
        assert!(i < WORDS_PER_LINE, "word index {i} out of line");
        WordMask(1 << i)
    }

    /// Whether word `i` is in the mask.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        i < WORDS_PER_LINE && self.0 & (1 << i) != 0
    }

    /// Adds word `i` to the mask.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < WORDS_PER_LINE, "word index {i} out of line");
        self.0 |= 1 << i;
    }

    /// Removes word `i` from the mask.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        self.0 &= !(1u16 << i);
    }

    /// Number of words in the mask.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the mask is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the word indices in the mask, in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..WORDS_PER_LINE).filter(move |&i| self.contains(i))
    }
}

impl std::ops::BitOr for WordMask {
    type Output = WordMask;
    fn bitor(self, rhs: WordMask) -> WordMask {
        WordMask(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for WordMask {
    fn bitor_assign(&mut self, rhs: WordMask) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for WordMask {
    type Output = WordMask;
    fn bitand(self, rhs: WordMask) -> WordMask {
        WordMask(self.0 & rhs.0)
    }
}

impl std::ops::Not for WordMask {
    type Output = WordMask;
    fn not(self) -> WordMask {
        WordMask(!self.0)
    }
}

impl fmt::Debug for WordMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WordMask({:#018b})", self.0)
    }
}

impl FromIterator<usize> for WordMask {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut m = WordMask::empty();
        for i in iter {
            m.insert(i);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_line_round_trip() {
        let a = Addr(0x12345 * WORD_BYTES);
        assert_eq!(a.word().addr(), a);
        let w = a.word();
        assert_eq!(w.line().word(w.index_in_line()), w);
    }

    #[test]
    fn line_geometry() {
        let l = LineAddr(5);
        assert_eq!(l.base_addr().0, 5 * LINE_BYTES);
        assert_eq!(l.word(0).line(), l);
        assert_eq!(l.word(WORDS_PER_LINE - 1).line(), l);
        assert_eq!(
            l.word(WORDS_PER_LINE - 1).index_in_line(),
            WORDS_PER_LINE - 1
        );
    }

    #[test]
    #[should_panic(expected = "out of line")]
    fn line_word_out_of_range_panics() {
        let _ = LineAddr(0).word(WORDS_PER_LINE);
    }

    #[test]
    fn alignment() {
        assert!(Addr(64).is_word_aligned());
        assert!(!Addr(65).is_word_aligned());
    }

    #[test]
    fn mask_ops() {
        let mut m = WordMask::empty();
        assert!(m.is_empty());
        m.insert(0);
        m.insert(15);
        assert_eq!(m.count(), 2);
        assert!(m.contains(0) && m.contains(15) && !m.contains(7));
        m.remove(0);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![15]);
        assert_eq!(WordMask::full().count(), WORDS_PER_LINE as u32);
        assert!(!WordMask::full().contains(WORDS_PER_LINE)); // out of range is "absent"
    }

    #[test]
    fn mask_bit_algebra() {
        let a = WordMask::single(1) | WordMask::single(2);
        let b = WordMask::single(2) | WordMask::single(3);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!((!a & a), WordMask::empty());
        let c: WordMask = [4usize, 9].into_iter().collect();
        assert_eq!(c.count(), 2);
    }
}
