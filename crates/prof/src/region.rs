//! Workload region names for address annotation.
//!
//! Workload builders allocate their shared arrays through
//! `gsim_workloads::layout::Layout`; `Layout::alloc_named` records the
//! `(name, base, length)` triples that become a [`RegionMap`], and the
//! profiler's hot-line report resolves raw line addresses against it —
//! so a report says `lock[3]` instead of `line 0x2a`.

use gsim_types::{LineAddr, WORDS_PER_LINE};

#[derive(Clone, Debug, PartialEq, Eq)]
struct Region {
    name: String,
    base_word: u64,
    words: u64,
}

/// Named word ranges of one workload's memory layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionMap {
    regions: Vec<Region>,
}

impl RegionMap {
    /// Records a region covering `words` words starting at `base_word`.
    pub fn add(&mut self, name: impl Into<String>, base_word: u64, words: u64) {
        self.regions.push(Region {
            name: name.into(),
            base_word,
            words,
        });
    }

    /// Whether any region is recorded.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// The region containing word address `w`, if any.
    pub fn label_word(&self, w: u64) -> Option<&str> {
        self.regions
            .iter()
            .find(|r| w >= r.base_word && w < r.base_word + r.words)
            .map(|r| r.name.as_str())
    }

    /// The region overlapping `line`, if any. Layout allocations are
    /// line-aligned, so at most one region overlaps a line in practice;
    /// on overlap the first recorded region wins.
    pub fn label_line(&self, line: LineAddr) -> Option<&str> {
        let lo = line.0 * WORDS_PER_LINE as u64;
        let hi = lo + WORDS_PER_LINE as u64;
        self.regions
            .iter()
            .find(|r| r.base_word < hi && r.base_word + r.words > lo)
            .map(|r| r.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_and_line_lookup() {
        let mut m = RegionMap::default();
        m.add("lock[]", 0, 2);
        m.add("data[]", 16, 10);
        assert_eq!(m.label_word(0), Some("lock[]"));
        assert_eq!(m.label_word(1), Some("lock[]"));
        assert_eq!(m.label_word(2), None);
        assert_eq!(m.label_word(20), Some("data[]"));
        assert_eq!(m.label_line(LineAddr(0)), Some("lock[]"));
        assert_eq!(m.label_line(LineAddr(1)), Some("data[]"));
        assert_eq!(m.label_line(LineAddr(2)), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(RegionMap::default().is_empty());
    }

    #[test]
    fn region_spanning_lines() {
        let mut m = RegionMap::default();
        m.add("grid", 32, 100); // lines 2..9
        assert_eq!(m.label_line(LineAddr(2)), Some("grid"));
        assert_eq!(m.label_line(LineAddr(8)), Some("grid"));
        assert_eq!(m.label_line(LineAddr(9)), None);
    }
}
