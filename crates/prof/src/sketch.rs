//! A fixed-capacity space-saving (heavy-hitter) sketch over cache
//! lines.
//!
//! Classic Metwally-Agrawala-El Abbadi space saving on the *total*
//! per-line event weight: when a new line arrives at a full sketch it
//! evicts the minimum-weight entry and inherits its weight as `err`.
//! The standard guarantees follow:
//!
//! * any line whose true weight exceeds `total / capacity` is present;
//! * a reported weight overestimates the truth by at most `err`, and
//!   `err ≤ total / capacity`.
//!
//! The per-metric fields ([`LineTally`]) are exact *for the period the
//! line was resident* — only the inherited `err` portion is of unknown
//! composition. Reports surface `err` so readers can judge.

use gsim_types::{FxHashMap, LineAddr};

/// Per-line event counters tracked by the sketch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineTally {
    /// Program accesses (loads, stores, atomics) touching the line.
    pub accesses: u64,
    /// Words of the line invalidated by acquire sweeps / flash
    /// invalidations at this cache.
    pub invalidations: u64,
    /// Words whose registration moved between L1s (ownership
    /// ping-pong; DeNovo registry only).
    pub transfers: u64,
    /// Registry forwards targeting the line (DeNovo registry only).
    pub forwards: u64,
}

impl LineTally {
    /// One access.
    pub fn access() -> Self {
        LineTally {
            accesses: 1,
            ..Default::default()
        }
    }

    /// `words` invalidated.
    pub fn invalidated(words: u64) -> Self {
        LineTally {
            invalidations: words,
            ..Default::default()
        }
    }

    /// `words` whose ownership transferred.
    pub fn transferred(words: u64) -> Self {
        LineTally {
            transfers: words,
            ..Default::default()
        }
    }

    /// One registry forward.
    pub fn forward() -> Self {
        LineTally {
            forwards: 1,
            ..Default::default()
        }
    }

    /// Total event weight.
    pub fn weight(&self) -> u64 {
        self.accesses + self.invalidations + self.transfers + self.forwards
    }

    /// Accumulates another tally.
    pub fn merge(&mut self, other: &LineTally) {
        self.accesses += other.accesses;
        self.invalidations += other.invalidations;
        self.transfers += other.transfers;
        self.forwards += other.forwards;
    }
}

#[derive(Clone, Debug)]
struct Entry {
    line: LineAddr,
    tally: LineTally,
    /// Weight inherited from the entry this one evicted (overestimate
    /// bound).
    err: u64,
}

impl Entry {
    fn weight(&self) -> u64 {
        self.tally.weight() + self.err
    }
}

/// The sketch: at most `capacity` resident lines, heavy hitters
/// guaranteed present.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: Vec<Entry>,
    index: FxHashMap<LineAddr, usize>,
    total: u64,
}

impl SpaceSaving {
    /// An empty sketch holding at most `capacity` lines (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: FxHashMap::default(),
            total: 0,
        }
    }

    /// Adds events for `line`.
    pub fn add(&mut self, line: LineAddr, delta: LineTally) {
        self.total += delta.weight();
        if let Some(&i) = self.index.get(&line) {
            self.entries[i].tally.merge(&delta);
        } else if self.entries.len() < self.capacity {
            self.index.insert(line, self.entries.len());
            self.entries.push(Entry {
                line,
                tally: delta,
                err: 0,
            });
        } else {
            // Evict the minimum-weight entry; the newcomer inherits its
            // weight as error. Ties break on the lower line address so
            // replacement is deterministic.
            let (i, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.weight(), e.line))
                .expect("capacity >= 1");
            let evicted = self.entries[i].weight();
            self.index.remove(&self.entries[i].line);
            self.index.insert(line, i);
            self.entries[i] = Entry {
                line,
                tally: delta,
                err: evicted,
            };
        }
    }

    /// Total event weight ever added (the denominator of the error
    /// bound `err ≤ total / capacity`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The sketch capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident `(line, tally, err)` rows, sorted by line address
    /// (deterministic; callers re-rank by weight as needed).
    pub fn rows(&self) -> Vec<(LineAddr, LineTally, u64)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .map(|e| (e.line, e.tally, e.err))
            .collect();
        v.sort_unstable_by_key(|&(line, _, _)| line);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(4);
        for i in 0..4u64 {
            for _ in 0..=i {
                s.add(LineAddr(i), LineTally::access());
            }
        }
        let rows = s.rows();
        assert_eq!(rows.len(), 4);
        for (i, &(line, tally, err)) in rows.iter().enumerate() {
            assert_eq!(line, LineAddr(i as u64));
            assert_eq!(tally.accesses, i as u64 + 1);
            assert_eq!(err, 0, "no eviction, no error");
        }
        assert_eq!(s.total(), 1 + 2 + 3 + 4);
    }

    /// The space-saving guarantee: a heavy hitter survives any stream
    /// of light keys, and the error bound holds.
    #[test]
    fn heavy_hitter_survives_churn() {
        let cap = 8;
        let mut s = SpaceSaving::new(cap);
        let heavy = LineAddr(999);
        for i in 0..1000u64 {
            s.add(LineAddr(i % 100), LineTally::access());
            if i % 4 == 0 {
                s.add(heavy, LineTally::invalidated(2));
            }
        }
        let rows = s.rows();
        let hot = rows
            .iter()
            .find(|(l, _, _)| *l == heavy)
            .expect("heavy hitter must be present");
        assert_eq!(hot.1.invalidations, 500, "resident-period tally exact");
        for &(_, tally, err) in &rows {
            assert!(
                err <= s.total() / cap as u64,
                "err {err} exceeds total/capacity = {}",
                s.total() / cap as u64
            );
            let _ = tally;
        }
    }

    #[test]
    fn multi_metric_tallies_merge() {
        let mut s = SpaceSaving::new(2);
        let l = LineAddr(7);
        s.add(l, LineTally::access());
        s.add(l, LineTally::transferred(3));
        s.add(l, LineTally::forward());
        let rows = s.rows();
        assert_eq!(rows.len(), 1);
        let (_, t, _) = rows[0];
        assert_eq!((t.accesses, t.transfers, t.forwards), (1, 3, 1));
        assert_eq!(t.weight(), 5);
    }

    #[test]
    fn deterministic_under_ties() {
        // Two identical streams must produce identical rows even though
        // evictions tie on weight.
        let run = || {
            let mut s = SpaceSaving::new(2);
            for i in 0..10u64 {
                s.add(LineAddr(i), LineTally::access());
            }
            s.rows()
        };
        assert_eq!(run(), run());
    }
}
