//! The profile report: the immutable result of a profiled run, with
//! reconciliation, annotation, JSON round-trip, and renderers.

use crate::attr::{StallKind, NUM_STALL_KINDS, STALL_KINDS};
use crate::interval::IntervalSample;
use crate::region::RegionMap;
use gsim_types::{Counts, Cycle, JsonValue, LineAddr};
use std::fmt::Write as _;

/// One CU's share of the run: its stall buckets and its counters (the
/// engine-side per-CU counters plus its L1's counters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CuRow {
    /// Cycles charged per bucket, indexed by `StallKind as usize`; sums
    /// exactly to the run's cycles.
    pub buckets: [u64; NUM_STALL_KINDS],
    /// This CU's counters.
    pub counts: Counts,
}

impl CuRow {
    /// Cycles this row attributes (equals the run's cycles).
    pub fn attributed(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// One contended line from the merged sketches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotLine {
    /// The line address (line index, not bytes).
    pub line: u64,
    /// Workload region containing the line, when a [`RegionMap`] was
    /// supplied (see [`ProfileReport::annotate`]).
    pub region: Option<String>,
    /// Program accesses at L1s plus L2/registry operations.
    pub accesses: u64,
    /// Words invalidated by acquire sweeps.
    pub invalidations: u64,
    /// Words whose registered owner changed (DeNovo ping-pong).
    pub transfers: u64,
    /// Registry forwards targeting the line.
    pub forwards: u64,
    /// Sketch overestimate bound inherited through evictions; the
    /// tallies above are exact for the line's resident period.
    pub err: u64,
}

impl HotLine {
    /// Total event weight (the ranking key).
    pub fn weight(&self) -> u64 {
        self.accesses + self.invalidations + self.transfers + self.forwards
    }
}

/// Everything a profiled run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    /// `SimStats::cycles` of the run.
    pub cycles: Cycle,
    /// The sampling interval used.
    pub interval: Cycle,
    /// Per-CU rows, indexed by CU.
    pub cus: Vec<CuRow>,
    /// The residual: non-CU L1s, the L2, and the mesh counters. The CU
    /// rows plus this sum exactly to the run's global `Counts`.
    pub other: Counts,
    /// Contended lines, ranked by weight descending (ties: lower line
    /// address first).
    pub hot_lines: Vec<HotLine>,
    /// Sketch capacity per cache (the error-bound denominator).
    pub sketch_capacity: usize,
    /// Total sketch updates across all caches (the error-bound
    /// numerator source: per-sketch `err <= updates / capacity`).
    pub sketch_updates: u64,
    /// Interval samples, cumulative counters plus gauges.
    pub samples: Vec<IntervalSample>,
    /// Samples dropped after the ring filled.
    pub dropped_samples: u64,
}

impl ProfileReport {
    /// Bucket sums across all CUs.
    pub fn bucket_totals(&self) -> [u64; NUM_STALL_KINDS] {
        let mut t = [0u64; NUM_STALL_KINDS];
        for cu in &self.cus {
            for (acc, b) in t.iter_mut().zip(cu.buckets.iter()) {
                *acc += b;
            }
        }
        t
    }

    /// Cycles attributed to one bucket, summed over CUs.
    pub fn bucket(&self, kind: StallKind) -> u64 {
        self.cus.iter().map(|c| c.buckets[kind as usize]).sum()
    }

    /// Sum of all per-CU rows plus the residual — must equal the run's
    /// global `Counts`.
    pub fn total_counts(&self) -> Counts {
        let mut t = self.other;
        for cu in &self.cus {
            t += cu.counts;
        }
        t
    }

    /// Checks the report's two exactness invariants against the run's
    /// stats: every CU's buckets sum to `stats.cycles`, and the CU rows
    /// plus the residual reproduce `stats.counts` field-for-field.
    pub fn reconcile(&self, cycles: Cycle, counts: &Counts) -> Result<(), String> {
        if self.cycles != cycles {
            return Err(format!(
                "report cycles {} != run cycles {}",
                self.cycles, cycles
            ));
        }
        for (cu, row) in self.cus.iter().enumerate() {
            let got = row.attributed();
            if got != cycles {
                return Err(format!(
                    "CU {cu}: attributed {got} cycles, run has {cycles}"
                ));
            }
        }
        let total = self.total_counts();
        if total != *counts {
            return Err(format!(
                "per-CU rows + residual do not reproduce global counts:\n  rows: {:?}\n  glob: {:?}",
                total, counts
            ));
        }
        Ok(())
    }

    /// Resolves hot-line addresses against a workload's region map.
    pub fn annotate(&mut self, regions: &RegionMap) {
        for h in &mut self.hot_lines {
            h.region = regions.label_line(LineAddr(h.line)).map(str::to_owned);
        }
    }

    // ---- JSON ----

    /// The report as a JSON tree (stable schema; see `from_json_value`).
    pub fn to_json_value(&self) -> JsonValue {
        let cus = self
            .cus
            .iter()
            .map(|row| {
                let buckets = STALL_KINDS
                    .into_iter()
                    .map(|k| {
                        (
                            k.label().to_string(),
                            JsonValue::num(row.buckets[k as usize]),
                        )
                    })
                    .collect();
                JsonValue::Obj(vec![
                    ("buckets".into(), JsonValue::Obj(buckets)),
                    ("counts".into(), row.counts.to_json_value()),
                ])
            })
            .collect();
        let hot_lines = self
            .hot_lines
            .iter()
            .map(|h| {
                JsonValue::Obj(vec![
                    ("line".into(), JsonValue::num(h.line)),
                    (
                        "region".into(),
                        match &h.region {
                            Some(r) => JsonValue::Str(r.clone()),
                            None => JsonValue::Null,
                        },
                    ),
                    ("accesses".into(), JsonValue::num(h.accesses)),
                    ("invalidations".into(), JsonValue::num(h.invalidations)),
                    ("transfers".into(), JsonValue::num(h.transfers)),
                    ("forwards".into(), JsonValue::num(h.forwards)),
                    ("err".into(), JsonValue::num(h.err)),
                ])
            })
            .collect();
        let samples = self
            .samples
            .iter()
            .map(|s| {
                JsonValue::Obj(vec![
                    ("cycle".into(), JsonValue::num(s.cycle)),
                    ("instructions".into(), JsonValue::num(s.instructions)),
                    ("l1_load_hits".into(), JsonValue::num(s.l1_load_hits)),
                    ("l1_load_misses".into(), JsonValue::num(s.l1_load_misses)),
                    ("messages".into(), JsonValue::num(s.messages)),
                    ("flits".into(), JsonValue::num(s.flits)),
                    ("mshr_occupancy".into(), JsonValue::num(s.mshr_occupancy)),
                    ("sb_occupancy".into(), JsonValue::num(s.sb_occupancy)),
                    (
                        "outstanding_syncs".into(),
                        JsonValue::num(s.outstanding_syncs),
                    ),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("cycles".into(), JsonValue::num(self.cycles)),
            ("interval".into(), JsonValue::num(self.interval)),
            (
                "sketch_capacity".into(),
                JsonValue::num(self.sketch_capacity as u64),
            ),
            ("sketch_updates".into(), JsonValue::num(self.sketch_updates)),
            (
                "dropped_samples".into(),
                JsonValue::num(self.dropped_samples),
            ),
            ("cus".into(), JsonValue::Arr(cus)),
            ("other".into(), self.other.to_json_value()),
            ("hot_lines".into(), JsonValue::Arr(hot_lines)),
            ("samples".into(), JsonValue::Arr(samples)),
        ])
    }

    /// Parses a tree produced by [`to_json_value`](Self::to_json_value).
    pub fn from_json_value(v: &JsonValue) -> Result<ProfileReport, String> {
        fn field(v: &JsonValue, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("profile report: missing or non-numeric `{key}`"))
        }
        let cus = v
            .get("cus")
            .and_then(JsonValue::as_arr)
            .ok_or("profile report: missing `cus`")?
            .iter()
            .map(|row| {
                let bv = row
                    .get("buckets")
                    .ok_or("profile report: CU row missing `buckets`")?;
                let mut buckets = [0u64; NUM_STALL_KINDS];
                for k in STALL_KINDS {
                    buckets[k as usize] = field(bv, k.label())?;
                }
                let counts = Counts::from_json_value(
                    row.get("counts")
                        .ok_or("profile report: CU row missing `counts`")?,
                )?;
                Ok(CuRow { buckets, counts })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let hot_lines = v
            .get("hot_lines")
            .and_then(JsonValue::as_arr)
            .ok_or("profile report: missing `hot_lines`")?
            .iter()
            .map(|h| {
                Ok(HotLine {
                    line: field(h, "line")?,
                    region: h
                        .get("region")
                        .and_then(JsonValue::as_str)
                        .map(str::to_owned),
                    accesses: field(h, "accesses")?,
                    invalidations: field(h, "invalidations")?,
                    transfers: field(h, "transfers")?,
                    forwards: field(h, "forwards")?,
                    err: field(h, "err")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let samples = v
            .get("samples")
            .and_then(JsonValue::as_arr)
            .ok_or("profile report: missing `samples`")?
            .iter()
            .map(|s| {
                Ok(IntervalSample {
                    cycle: field(s, "cycle")?,
                    instructions: field(s, "instructions")?,
                    l1_load_hits: field(s, "l1_load_hits")?,
                    l1_load_misses: field(s, "l1_load_misses")?,
                    messages: field(s, "messages")?,
                    flits: field(s, "flits")?,
                    mshr_occupancy: field(s, "mshr_occupancy")?,
                    sb_occupancy: field(s, "sb_occupancy")?,
                    outstanding_syncs: field(s, "outstanding_syncs")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ProfileReport {
            cycles: field(v, "cycles")?,
            interval: field(v, "interval")?,
            cus,
            other: Counts::from_json_value(
                v.get("other").ok_or("profile report: missing `other`")?,
            )?,
            hot_lines,
            sketch_capacity: field(v, "sketch_capacity")? as usize,
            sketch_updates: field(v, "sketch_updates")?,
            samples,
            dropped_samples: field(v, "dropped_samples")?,
        })
    }

    /// Compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Parses [`to_json`](Self::to_json) output.
    pub fn from_json(text: &str) -> Result<ProfileReport, String> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    // ---- time-series exports ----

    /// The interval series as CSV with per-interval deltas for the
    /// counter columns and instantaneous values for the gauges.
    pub fn intervals_csv(&self) -> String {
        let mut out = String::from(
            "cycle,instructions,ipc,l1_hit_rate,messages,flits,mshr_occupancy,sb_occupancy,outstanding_syncs\n",
        );
        let mut prev = IntervalSample::default();
        for s in &self.samples {
            let dc = s.cycle.saturating_sub(prev.cycle);
            let di = s.instructions - prev.instructions;
            let dh = s.l1_load_hits - prev.l1_load_hits;
            let dm = s.l1_load_misses - prev.l1_load_misses;
            let ipc = if dc > 0 { di as f64 / dc as f64 } else { 0.0 };
            let hit = if dh + dm > 0 {
                dh as f64 / (dh + dm) as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{},{},{:.4},{:.4},{},{},{},{},{}",
                s.cycle,
                di,
                ipc,
                hit,
                s.messages - prev.messages,
                s.flits - prev.flits,
                s.mshr_occupancy,
                s.sb_occupancy,
                s.outstanding_syncs,
            );
            prev = *s;
        }
        out
    }

    /// The interval series as named counter tracks — one
    /// `(name, points)` pair per derived metric, ready for
    /// `gsim-trace`'s Perfetto counter-track writer. Rates are
    /// per-interval deltas; occupancies are gauges.
    pub fn counter_series(&self) -> Vec<(String, Vec<(Cycle, f64)>)> {
        let n = self.samples.len();
        let mut ipc = Vec::with_capacity(n);
        let mut hit = Vec::with_capacity(n);
        let mut flits = Vec::with_capacity(n);
        let mut mshr = Vec::with_capacity(n);
        let mut sb = Vec::with_capacity(n);
        let mut syncs = Vec::with_capacity(n);
        let mut prev = IntervalSample::default();
        for s in &self.samples {
            let dc = s.cycle.saturating_sub(prev.cycle);
            let di = s.instructions - prev.instructions;
            let dh = s.l1_load_hits - prev.l1_load_hits;
            let dm = s.l1_load_misses - prev.l1_load_misses;
            ipc.push((s.cycle, if dc > 0 { di as f64 / dc as f64 } else { 0.0 }));
            hit.push((
                s.cycle,
                if dh + dm > 0 {
                    dh as f64 / (dh + dm) as f64
                } else {
                    0.0
                },
            ));
            flits.push((s.cycle, (s.flits - prev.flits) as f64));
            mshr.push((s.cycle, s.mshr_occupancy as f64));
            sb.push((s.cycle, s.sb_occupancy as f64));
            syncs.push((s.cycle, s.outstanding_syncs as f64));
            prev = *s;
        }
        vec![
            ("ipc".into(), ipc),
            ("l1-hit-rate".into(), hit),
            ("flits-per-interval".into(), flits),
            ("mshr-occupancy".into(), mshr),
            ("sb-occupancy".into(), sb),
            ("outstanding-syncs".into(), syncs),
        ]
    }

    // ---- renderers ----

    /// The stall breakdown summed over CUs: one row per bucket with
    /// cycles and share of total attributed cycles.
    pub fn render_stalls(&self) -> String {
        let totals = self.bucket_totals();
        let grand: u64 = totals.iter().sum();
        let mut out = format!(
            "stall breakdown ({} CUs x {} cycles = {} attributed)\n",
            self.cus.len(),
            self.cycles,
            grand
        );
        let _ = writeln!(out, "  {:<20} {:>14} {:>8}", "bucket", "cycles", "share");
        for k in STALL_KINDS {
            let c = totals[k as usize];
            let share = if grand > 0 {
                100.0 * c as f64 / grand as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "  {:<20} {:>14} {:>7.1}%", k.label(), c, share);
        }
        out
    }

    /// The per-CU matrix: one row per CU, one column per bucket, plus
    /// instructions and IPC.
    pub fn render_cus(&self) -> String {
        let mut out = String::from("per-CU attribution (cycles per bucket)\n");
        let mut header = format!("  {:>3}", "cu");
        for k in STALL_KINDS {
            let _ = write!(header, " {:>10}", k.short_label());
        }
        let _ = writeln!(out, "{header} {:>12} {:>6}", "instrs", "ipc");
        for (cu, row) in self.cus.iter().enumerate() {
            let mut line = format!("  {cu:>3}");
            for k in STALL_KINDS {
                let _ = write!(line, " {:>10}", row.buckets[k as usize]);
            }
            let ipc = if self.cycles > 0 {
                row.counts.instructions as f64 / self.cycles as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "{line} {:>12} {:>6.3}", row.counts.instructions, ipc);
        }
        out
    }

    /// The top-`topn` contended lines as a table. Lines are annotated
    /// with workload regions when [`annotate`](Self::annotate) ran.
    pub fn render_hot_lines(&self, topn: usize) -> String {
        let mut out = format!(
            "hot lines (top {} of {}; sketch cap {} per cache, {} updates)\n",
            topn.min(self.hot_lines.len()),
            self.hot_lines.len(),
            self.sketch_capacity,
            self.sketch_updates
        );
        let _ = writeln!(
            out,
            "  {:>10} {:<14} {:>10} {:>8} {:>9} {:>8} {:>6}",
            "line", "region", "accesses", "invals", "transfers", "fwds", "err"
        );
        for h in self.hot_lines.iter().take(topn) {
            let _ = writeln!(
                out,
                "  {:>#10x} {:<14} {:>10} {:>8} {:>9} {:>8} {:>6}",
                h.line,
                h.region.as_deref().unwrap_or("-"),
                h.accesses,
                h.invalidations,
                h.transfers,
                h.forwards,
                h.err
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let mut cus = Vec::new();
        for cu in 0..2u64 {
            let mut buckets = [0u64; NUM_STALL_KINDS];
            buckets[StallKind::Issue as usize] = 60 + cu;
            buckets[StallKind::Idle as usize] = 40 - cu;
            let counts = Counts {
                instructions: 60 + cu,
                l1_accesses: 10 * (cu + 1),
                ..Default::default()
            };
            cus.push(CuRow { buckets, counts });
        }
        let other = Counts {
            l2_accesses: 7,
            messages_sent: 21,
            flit_hops: 63,
            ..Default::default()
        };
        ProfileReport {
            cycles: 100,
            interval: 16,
            cus,
            other,
            hot_lines: vec![HotLine {
                line: 0x2a,
                region: None,
                accesses: 5,
                invalidations: 2,
                transfers: 1,
                forwards: 0,
                err: 0,
            }],
            sketch_capacity: 64,
            sketch_updates: 8,
            samples: vec![
                IntervalSample {
                    cycle: 16,
                    instructions: 20,
                    l1_load_hits: 6,
                    l1_load_misses: 2,
                    messages: 4,
                    flits: 12,
                    mshr_occupancy: 1,
                    sb_occupancy: 2,
                    outstanding_syncs: 0,
                },
                IntervalSample {
                    cycle: 32,
                    instructions: 50,
                    l1_load_hits: 14,
                    l1_load_misses: 2,
                    messages: 9,
                    flits: 30,
                    mshr_occupancy: 0,
                    sb_occupancy: 0,
                    outstanding_syncs: 3,
                },
            ],
            dropped_samples: 0,
        }
    }

    #[test]
    fn json_round_trips() {
        let mut r = sample_report();
        r.hot_lines[0].region = Some("lock[]".into());
        let back = ProfileReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn reconcile_accepts_and_rejects() {
        let r = sample_report();
        let mut global = r.total_counts();
        assert!(r.reconcile(100, &global).is_ok());
        assert!(r.reconcile(99, &global).is_err(), "wrong cycles");
        global.instructions += 1;
        assert!(r.reconcile(100, &global).is_err(), "wrong counts");
        let mut bad = r.clone();
        bad.cus[0].buckets[0] += 1;
        assert!(
            bad.reconcile(100, &bad.total_counts()).is_err(),
            "row does not sum to cycles"
        );
    }

    #[test]
    fn csv_deltas_and_series() {
        let r = sample_report();
        let csv = r.intervals_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("cycle,instructions,ipc,l1_hit_rate"));
        // Second interval: 30 instrs over 16 cycles, 8 hits 0 misses.
        assert_eq!(lines[2], "32,30,1.8750,1.0000,5,18,0,0,3");
        let series = r.counter_series();
        assert_eq!(series.len(), 6);
        let ipc = &series[0];
        assert_eq!(ipc.0, "ipc");
        assert_eq!(ipc.1, vec![(16, 1.25), (32, 1.875)]);
        let syncs = &series[5];
        assert_eq!(syncs.1[1], (32, 3.0));
    }

    #[test]
    fn annotate_labels_hot_lines() {
        let mut r = sample_report();
        let mut m = RegionMap::default();
        // Line 0x2a = word 672; cover it.
        m.add("flags[]", 0x2a * 16, 16);
        r.annotate(&m);
        assert_eq!(r.hot_lines[0].region.as_deref(), Some("flags[]"));
        let rendered = r.render_hot_lines(10);
        assert!(rendered.contains("flags[]"), "{rendered}");
        assert!(rendered.contains("0x2a"), "{rendered}");
    }

    #[test]
    fn renderers_mention_buckets() {
        let r = sample_report();
        let s = r.render_stalls();
        assert!(s.contains("global-acquire-spin"));
        assert!(s.contains("issue"));
        let c = r.render_cus();
        assert!(c.contains("g-spin"));
        assert!(c.lines().count() >= 4);
    }
}
