#![warn(missing_docs)]

//! **gsim-prof** — the opt-in profiling layer of the gpu-denovo
//! simulator.
//!
//! The paper's headline claims are *attribution* claims: DeNovo wins on
//! locally synchronized benchmarks because acquire spins stay in the L1
//! and flash invalidations disappear. Whole-run aggregates
//! ([`SimStats`](gsim_types::SimStats)) cannot show that; this crate
//! can. It adds three views, all wired through `SystemConfig::prof` and
//! all *observation-only* — a profiled run produces byte-identical
//! statistics to an unprofiled one:
//!
//! 1. **Cycle attribution** ([`StallKind`], [`CuRow`]): the engine
//!    charges every cycle of every CU to exactly one of eight buckets
//!    (compute/issue, load-use stall, store-buffer full, SB release
//!    drain, global-acquire spin, local-acquire spin, barrier wait,
//!    idle), alongside per-CU copies of the engine counters. The
//!    invariant — checked by [`ProfileReport::reconcile`] — is that
//!    per-CU rows sum *exactly* to the global totals.
//! 2. **Hot-line contention** ([`SpaceSaving`], [`HotLine`]): a
//!    fixed-capacity heavy-hitter sketch per L1 and one at the L2
//!    registry track the top lines by accesses, invalidations received,
//!    ownership transfers (ping-pong), and registry forwards. Reports
//!    annotate lines with workload region names (`lock[3]`, `data[]`)
//!    via [`RegionMap`].
//! 3. **Interval time-series** ([`IntervalSample`]): every `interval`
//!    cycles the engine snapshots cumulative counters and instantaneous
//!    occupancies into a bounded ring, exported as delta CSV and as
//!    Perfetto counter tracks.
//!
//! The engine talks to the profiler through a [`ProfHandle`] — an
//! `Option<Rc<RefCell<...>>>` mirroring `gsim-trace`'s `TraceHandle`,
//! so a disabled handle costs one branch per hook and the profiler
//! never schedules events or mutates simulation state.

mod attr;
mod handle;
mod interval;
mod region;
mod report;
mod sketch;
mod spec;

pub use attr::{CuAttr, StallKind, NUM_STALL_KINDS, STALL_KINDS};
pub use handle::{ProfHandle, Profiler, ReportInputs};
pub use interval::{IntervalRing, IntervalSample, MAX_SAMPLES};
pub use region::RegionMap;
pub use report::{CuRow, HotLine, ProfileReport};
pub use sketch::{LineTally, SpaceSaving};
pub use spec::{ProfLevel, ProfSpec};
