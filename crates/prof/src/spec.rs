//! Profiling level and parameters, wired through `SystemConfig::prof`
//! the same way `CheckLevel` is wired through `SystemConfig::check`.

use gsim_types::Cycle;

/// Whether profiling is collected for a run.
///
/// Mirrors `gsim_check::CheckLevel` in how it reaches the engine (a
/// `SystemConfig` field with a build-dependent default), but unlike
/// checking the default is `Off` in **every** build: profiling is pure
/// observation that callers opt into per run, and the committed perf
/// baseline (`sim_throughput`) asserts it stays out of the timed path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProfLevel {
    /// No profiling: every hook is a single branch on a `None`.
    #[default]
    Off,
    /// Full profiling: cycle attribution, hot-line sketches, and
    /// interval sampling.
    On,
}

impl ProfLevel {
    /// The default level for the current build profile. Always `Off`
    /// (see the type docs for why this differs from
    /// `CheckLevel::default_for_build`).
    pub fn default_for_build() -> Self {
        ProfLevel::Off
    }

    /// Whether any profiling work happens at this level.
    #[inline]
    pub fn enabled(self) -> bool {
        self == ProfLevel::On
    }

    /// Short lowercase label (CLI output, cache keys).
    pub fn label(self) -> &'static str {
        match self {
            ProfLevel::Off => "off",
            ProfLevel::On => "on",
        }
    }
}

/// Profiling parameters for one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProfSpec {
    /// Collection level.
    pub level: ProfLevel,
    /// Sampling period of the interval time-series, in cycles.
    pub interval: Cycle,
    /// Capacity of each space-saving hot-line sketch (one per L1, one
    /// at the L2 registry). Any line whose true event count exceeds
    /// `total / sketch_lines` is guaranteed to be present.
    pub sketch_lines: usize,
}

impl ProfSpec {
    /// The default sampling period.
    pub const DEFAULT_INTERVAL: Cycle = 1024;
    /// The default sketch capacity.
    pub const DEFAULT_SKETCH_LINES: usize = 64;

    /// Profiling disabled (the `SystemConfig` default).
    pub fn off() -> Self {
        ProfSpec {
            level: ProfLevel::Off,
            interval: Self::DEFAULT_INTERVAL,
            sketch_lines: Self::DEFAULT_SKETCH_LINES,
        }
    }

    /// Profiling enabled with the default interval and sketch size.
    pub fn on() -> Self {
        ProfSpec {
            level: ProfLevel::On,
            ..Self::off()
        }
    }

    /// The default for the current build profile: off (see
    /// [`ProfLevel::default_for_build`]).
    pub fn default_for_build() -> Self {
        ProfSpec {
            level: ProfLevel::default_for_build(),
            ..Self::off()
        }
    }

    /// Whether this spec collects anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level.enabled()
    }

    /// A canonical token for cache keys: distinct parameters must yield
    /// distinct cached profiles.
    pub fn cache_token(&self) -> String {
        format!(
            "prof={};i{};s{}",
            self.level.label(),
            self.interval,
            self.sketch_lines
        )
    }
}

impl Default for ProfSpec {
    fn default() -> Self {
        ProfSpec::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        assert!(!ProfSpec::default().enabled());
        assert!(!ProfSpec::default_for_build().enabled());
        assert_eq!(ProfLevel::default_for_build(), ProfLevel::Off);
        assert!(ProfSpec::on().enabled());
    }

    #[test]
    fn cache_token_distinguishes_parameters() {
        let a = ProfSpec::on();
        let mut b = a;
        b.interval = 256;
        let mut c = a;
        c.sketch_lines = 8;
        assert_ne!(a.cache_token(), b.cache_token());
        assert_ne!(a.cache_token(), c.cache_token());
        assert_ne!(ProfSpec::off().cache_token(), a.cache_token());
    }
}
