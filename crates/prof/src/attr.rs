//! Cycle attribution: the eight stall buckets and the per-CU charging
//! state machine.
//!
//! The engine drives one [`CuAttr`] per CU. Every attributed interval
//! is half-open `[since, now)` and every transition both charges the
//! elapsed interval and moves `since`, so the buckets of a CU always
//! sum *exactly* to the cycles attributed so far — there is no way to
//! double-charge or drop a cycle. Issue ticks additionally charge the
//! issuing cycle itself to the instruction's bucket (normally
//! [`StallKind::Issue`]; [`StallKind::SbFull`] when the instruction hit
//! a full store buffer or a full MSHR and burned the cycle retrying).

use gsim_types::Cycle;

/// Number of attribution buckets.
pub const NUM_STALL_KINDS: usize = 8;

/// What a CU cycle was spent on. Every resident-CU cycle is charged to
/// exactly one of these.
///
/// When several thread blocks of one CU are blocked for different
/// reasons, the CU-level state is the highest-priority reason in the
/// order `GlobalSpin > LocalSpin > Barrier > SbDrain > SbFull >
/// LoadUse > Issue > Idle` — a deliberate approximation that favours
/// synchronization visibility (the paper's §5 narrative is about where
/// sync cycles go), documented in DESIGN.md §7f.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum StallKind {
    /// Issuing instructions, or compute latency (`Compute` sleeps).
    Issue = 0,
    /// Waiting for a load (includes MSHR-full retry spins and load
    /// backoff sleeps).
    LoadUse = 1,
    /// A store found the store buffer full and forced an overflow
    /// flush this cycle.
    SbFull = 2,
    /// Draining the store buffer for a release (the release phase of a
    /// sync op, or an end-of-kernel flush).
    SbDrain = 3,
    /// Spinning on a globally scoped (or DRF-effectively-global)
    /// acquire.
    GlobalSpin = 4,
    /// Spinning on a locally scoped acquire (HRF configs only).
    LocalSpin = 5,
    /// Waiting on a sync *read* (`AtomicOp::Read`): barrier flag and
    /// ticket-turn waits.
    Barrier = 6,
    /// No resident thread block.
    Idle = 7,
}

/// All kinds, in bucket order (stable across reports and JSON).
pub const STALL_KINDS: [StallKind; NUM_STALL_KINDS] = [
    StallKind::Issue,
    StallKind::LoadUse,
    StallKind::SbFull,
    StallKind::SbDrain,
    StallKind::GlobalSpin,
    StallKind::LocalSpin,
    StallKind::Barrier,
    StallKind::Idle,
];

impl StallKind {
    /// Stable lowercase label (report columns, JSON keys, CSV headers).
    pub fn label(self) -> &'static str {
        match self {
            StallKind::Issue => "issue",
            StallKind::LoadUse => "load-use",
            StallKind::SbFull => "sb-full",
            StallKind::SbDrain => "sb-drain",
            StallKind::GlobalSpin => "global-acquire-spin",
            StallKind::LocalSpin => "local-acquire-spin",
            StallKind::Barrier => "barrier-wait",
            StallKind::Idle => "idle",
        }
    }

    /// Compact label for per-CU table columns.
    pub fn short_label(self) -> &'static str {
        match self {
            StallKind::Issue => "issue",
            StallKind::LoadUse => "ld-use",
            StallKind::SbFull => "sb-full",
            StallKind::SbDrain => "sb-drain",
            StallKind::GlobalSpin => "g-spin",
            StallKind::LocalSpin => "l-spin",
            StallKind::Barrier => "barrier",
            StallKind::Idle => "idle",
        }
    }

    /// Parses a [`label`](Self::label) back (JSON round-trip).
    pub fn from_label(s: &str) -> Option<Self> {
        STALL_KINDS.into_iter().find(|k| k.label() == s)
    }

    /// Priority when several blocked thread blocks disagree about why
    /// their CU is stalled (higher wins; see the type docs).
    pub fn priority(self) -> u8 {
        match self {
            StallKind::GlobalSpin => 7,
            StallKind::LocalSpin => 6,
            StallKind::Barrier => 5,
            StallKind::SbDrain => 4,
            StallKind::SbFull => 3,
            StallKind::LoadUse => 2,
            StallKind::Issue => 1,
            StallKind::Idle => 0,
        }
    }

    /// Of two reasons, the one that should label the CU.
    pub fn max_priority(self, other: StallKind) -> StallKind {
        if other.priority() > self.priority() {
            other
        } else {
            self
        }
    }
}

/// The charging state machine of one CU.
#[derive(Clone, Debug)]
pub struct CuAttr {
    kind: StallKind,
    since: Cycle,
    /// The bucket the most recent issue tick charged (so `finish` can
    /// reclaim a tick that landed on the run's final cycle).
    last_tick: StallKind,
    /// Cycles charged per bucket, indexed by `StallKind as usize`.
    pub buckets: [u64; NUM_STALL_KINDS],
}

impl Default for CuAttr {
    fn default() -> Self {
        CuAttr {
            kind: StallKind::Idle,
            since: 0,
            last_tick: StallKind::Idle,
            buckets: [0; NUM_STALL_KINDS],
        }
    }
}

impl CuAttr {
    /// Charges `[since, now)` to the current state and moves `since`.
    /// A `now` before `since` (a state transition in the same cycle as
    /// an already-charged issue tick) has nothing elapsed to charge.
    #[inline]
    fn charge_to(&mut self, now: Cycle) {
        if now < self.since {
            return;
        }
        self.buckets[self.kind as usize] += now - self.since;
        self.since = now;
    }

    /// An issue tick at `now`: the elapsed interval goes to the current
    /// state, the issuing cycle itself to `bucket`, and the CU enters
    /// `next` (or keeps its state when `next` is `None` — used when a
    /// kernel boundary already set it this cycle).
    #[inline]
    pub fn tick(&mut self, now: Cycle, bucket: StallKind, next: Option<StallKind>) {
        self.charge_to(now);
        self.buckets[bucket as usize] += 1;
        self.last_tick = bucket;
        self.since = now + 1;
        if let Some(next) = next {
            self.kind = next;
        }
    }

    /// A state transition at `now` (completion, wake-up, kernel
    /// boundary): charge the elapsed interval, then switch.
    #[inline]
    pub fn set_state(&mut self, now: Cycle, kind: StallKind) {
        self.charge_to(now);
        self.kind = kind;
    }

    /// Charges the tail interval up to the end of the run. If the run's
    /// final event was an issue tick at `end`, its issuing-cycle charge
    /// lies past the accounted range `[0, end)` and is reclaimed, so
    /// the buckets sum to exactly `end`.
    pub fn finish(&mut self, end: Cycle) {
        if self.since > end {
            self.buckets[self.last_tick as usize] -= self.since - end;
            self.since = end;
            return;
        }
        self.charge_to(end);
    }

    /// Total cycles attributed so far.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in STALL_KINDS {
            assert_eq!(StallKind::from_label(k.label()), Some(k));
        }
        assert_eq!(StallKind::from_label("nope"), None);
    }

    #[test]
    fn priorities_are_distinct_and_sync_wins() {
        let mut ps: Vec<u8> = STALL_KINDS.iter().map(|k| k.priority()).collect();
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ps.len(), NUM_STALL_KINDS);
        assert_eq!(
            StallKind::LoadUse.max_priority(StallKind::GlobalSpin),
            StallKind::GlobalSpin
        );
        assert_eq!(
            StallKind::Idle.max_priority(StallKind::Issue),
            StallKind::Issue
        );
    }

    /// Whatever sequence of ticks and transitions runs, the buckets sum
    /// exactly to the final cycle count.
    #[test]
    fn attribution_is_exact() {
        let mut a = CuAttr::default();
        a.set_state(0, StallKind::Issue); // kernel start
        a.tick(1, StallKind::Issue, Some(StallKind::LoadUse)); // issue, then block
        a.set_state(9, StallKind::Issue); // load completed at 9
        a.tick(10, StallKind::Issue, Some(StallKind::GlobalSpin));
        a.set_state(52, StallKind::Issue);
        a.tick(52, StallKind::SbFull, Some(StallKind::Idle)); // same-cycle wake+tick
        a.finish(100);
        assert_eq!(a.total(), 100);
        // Issue: [0,1) + tick@1 + [9,10) + tick@10.
        assert_eq!(a.buckets[StallKind::Issue as usize], 4);
        assert_eq!(a.buckets[StallKind::SbFull as usize], 1);
        assert_eq!(a.buckets[StallKind::LoadUse as usize], 7); // [2, 9)
        assert_eq!(a.buckets[StallKind::GlobalSpin as usize], 41); // [11, 52)
        assert_eq!(a.buckets[StallKind::Idle as usize], 47); // [53, 100)
    }

    /// A tick on the run's very last cycle charges past `end`; `finish`
    /// reclaims it so totals still equal the cycle count.
    #[test]
    fn final_cycle_tick_is_reclaimed() {
        let mut a = CuAttr::default();
        a.set_state(0, StallKind::Issue);
        a.tick(10, StallKind::Issue, Some(StallKind::Idle));
        a.finish(10);
        assert_eq!(a.total(), 10);
        assert_eq!(a.buckets[StallKind::Issue as usize], 10);
    }

    /// A kernel-boundary transition in the same cycle as a just-charged
    /// tick charges nothing extra but does switch state.
    #[test]
    fn same_cycle_transition_after_tick() {
        let mut a = CuAttr::default();
        a.set_state(0, StallKind::Issue);
        a.tick(4, StallKind::Issue, Some(StallKind::Idle));
        a.set_state(4, StallKind::SbDrain); // end-of-kernel, same cycle
        a.finish(20);
        assert_eq!(a.total(), 20);
        assert_eq!(a.buckets[StallKind::Issue as usize], 5); // [0,4) + tick@4
        assert_eq!(a.buckets[StallKind::SbDrain as usize], 15); // [5,20)
        assert_eq!(a.buckets[StallKind::Idle as usize], 0);
    }

    #[test]
    fn tick_with_none_keeps_state() {
        let mut a = CuAttr::default();
        a.set_state(5, StallKind::SbDrain);
        a.tick(5, StallKind::Issue, None); // halt cycle during a drain
        a.finish(20);
        assert_eq!(a.buckets[StallKind::Idle as usize], 5); // [0, 5)
        assert_eq!(a.buckets[StallKind::Issue as usize], 1);
        assert_eq!(a.buckets[StallKind::SbDrain as usize], 14); // [6, 20)
        assert_eq!(a.total(), 20);
    }
}
