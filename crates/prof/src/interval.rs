//! The interval time-series: periodic snapshots of cumulative counters
//! and instantaneous occupancies.
//!
//! The engine samples at every multiple of `ProfSpec::interval` it
//! crosses (lazily, from the event loop — an idle gap spanning several
//! boundaries yields several identical snapshots, which honestly render
//! as zero-delta intervals). Samples hold *cumulative* values; exports
//! compute per-interval deltas so a CSV row or a Perfetto counter point
//! describes one interval.

use gsim_types::Cycle;

/// Ring capacity: samples beyond this are counted as dropped rather
/// than recorded (keeping the *earliest* window, like the trace ring
/// keeps its earliest events; a paper-scale run at the default interval
/// stays well under this).
pub const MAX_SAMPLES: usize = 1 << 16;

/// One snapshot. Counter fields are cumulative since cycle 0;
/// `*_occupancy` and `outstanding_syncs` are instantaneous gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// The sample boundary (a multiple of the sampling interval).
    pub cycle: Cycle,
    /// Cumulative instructions retired.
    pub instructions: u64,
    /// Cumulative L1 load hits (all L1s).
    pub l1_load_hits: u64,
    /// Cumulative L1 load misses (all L1s).
    pub l1_load_misses: u64,
    /// Cumulative mesh messages sent.
    pub messages: u64,
    /// Cumulative flit-hop crossings.
    pub flits: u64,
    /// MSHR entries in flight across all L1s, at sample time.
    pub mshr_occupancy: u64,
    /// Store-buffer lines held across all L1s, at sample time.
    pub sb_occupancy: u64,
    /// Sync operations (atomics) in flight, at sample time.
    pub outstanding_syncs: u64,
}

/// The bounded sample store.
#[derive(Clone, Debug, Default)]
pub struct IntervalRing {
    samples: Vec<IntervalSample>,
    dropped: u64,
}

impl IntervalRing {
    /// Records a sample, or counts it dropped when full.
    pub fn push(&mut self, s: IntervalSample) {
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(s);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded samples, in time order.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Samples that arrived after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring.
    pub fn into_parts(self) -> (Vec<IntervalSample>, u64) {
        (self.samples, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = IntervalRing::default();
        for i in 0..(MAX_SAMPLES as u64 + 5) {
            r.push(IntervalSample {
                cycle: i,
                ..Default::default()
            });
        }
        assert_eq!(r.samples().len(), MAX_SAMPLES);
        assert_eq!(r.dropped(), 5);
        assert_eq!(r.samples()[0].cycle, 0, "earliest window kept");
    }
}
