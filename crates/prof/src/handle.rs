//! The engine-facing profiler: shared collection state behind a
//! cheap-to-clone handle.
//!
//! [`ProfHandle`] mirrors `gsim-trace`'s `TraceHandle`: an
//! `Option<Rc<RefCell<Profiler>>>`. The engine holds one handle and
//! every cache controller holds a clone, so hooks anywhere in the
//! memory system reach the same sketches. A disabled handle is `None`
//! and every hook is one branch.
//!
//! The profiler is observation-only by construction: no method
//! schedules an event, touches protocol state, or returns anything the
//! engine acts on (other than [`ProfHandle::is_enabled`], which is
//! constant for a run).

use crate::attr::{CuAttr, StallKind};
use crate::interval::{IntervalRing, IntervalSample};
use crate::report::{CuRow, ProfileReport};
use crate::sketch::{LineTally, SpaceSaving};
use crate::spec::ProfSpec;
use gsim_types::{Counts, Cycle, LineAddr};
use std::cell::RefCell;
use std::rc::Rc;

/// The collection state of one profiled run.
#[derive(Clone, Debug)]
pub struct Profiler {
    spec: ProfSpec,
    gpu_cus: usize,
    attr: Vec<CuAttr>,
    cu_counts: Vec<Counts>,
    l1_sketches: Vec<SpaceSaving>,
    l2_sketch: SpaceSaving,
    ring: IntervalRing,
}

impl Profiler {
    fn new(spec: ProfSpec, gpu_cus: usize, nodes: usize) -> Self {
        Profiler {
            spec,
            gpu_cus,
            attr: vec![CuAttr::default(); gpu_cus],
            cu_counts: vec![Counts::default(); gpu_cus],
            l1_sketches: (0..nodes)
                .map(|_| SpaceSaving::new(spec.sketch_lines))
                .collect(),
            l2_sketch: SpaceSaving::new(spec.sketch_lines),
            ring: IntervalRing::default(),
        }
    }
}

/// End-of-run inputs the engine owns and the profiler needs to build
/// its report: the final cycle and the counters of the non-engine
/// components.
#[derive(Clone, Debug)]
pub struct ReportInputs {
    /// `SimStats::cycles` of the run.
    pub end: Cycle,
    /// Final per-node L1 counters (all nodes, CU order first).
    pub l1_counts: Vec<Counts>,
    /// Final L2 counters.
    pub l2_counts: Counts,
    /// `Counts::messages_sent` of the run.
    pub messages_sent: u64,
    /// `Counts::flit_hops` of the run.
    pub flit_hops: u64,
}

/// A shared, cheaply clonable reference to a [`Profiler`] — or nothing.
#[derive(Clone, Debug, Default)]
pub struct ProfHandle {
    inner: Option<Rc<RefCell<Profiler>>>,
}

impl ProfHandle {
    /// A disabled handle: every hook is a no-op.
    pub fn disabled() -> Self {
        ProfHandle { inner: None }
    }

    /// A handle for `spec`; disabled when the spec is off. `gpu_cus`
    /// CUs get attribution rows, `nodes` L1s get sketches.
    pub fn new(spec: ProfSpec, gpu_cus: usize, nodes: usize) -> Self {
        if !spec.enabled() {
            return ProfHandle::disabled();
        }
        ProfHandle {
            inner: Some(Rc::new(RefCell::new(Profiler::new(spec, gpu_cus, nodes)))),
        }
    }

    /// Another handle to the same profiler (what `set_prof` clones into
    /// each cache controller).
    pub fn share(&self) -> ProfHandle {
        ProfHandle {
            inner: self.inner.clone(),
        }
    }

    /// Whether profiling is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The sampling interval, or `Cycle::MAX` when disabled (so the
    /// engine's `now >= next_sample` test is always false).
    pub fn sample_interval(&self) -> Cycle {
        match &self.inner {
            Some(p) => p.borrow().spec.interval.max(1),
            None => Cycle::MAX,
        }
    }

    // ---- cycle attribution (engine hooks) ----

    /// An issue tick on `cu` at `now`: charge the issued cycle to
    /// `bucket` and enter `next` (`None` keeps the state a kernel
    /// boundary set this cycle).
    #[inline]
    pub fn tick(&self, cu: usize, now: Cycle, bucket: StallKind, next: Option<StallKind>) {
        if let Some(p) = &self.inner {
            p.borrow_mut().attr[cu].tick(now, bucket, next);
        }
    }

    /// A CU state transition at `now` (completion, wake, kernel
    /// boundary).
    #[inline]
    pub fn set_state(&self, cu: usize, now: Cycle, kind: StallKind) {
        if let Some(p) = &self.inner {
            p.borrow_mut().attr[cu].set_state(now, kind);
        }
    }

    // ---- per-CU engine counters ----

    /// One instruction retired on `cu`.
    #[inline]
    pub fn instr(&self, cu: usize) {
        if let Some(p) = &self.inner {
            p.borrow_mut().cu_counts[cu].instructions += 1;
        }
    }

    /// One scratchpad access on `cu`.
    #[inline]
    pub fn scratch(&self, cu: usize) {
        if let Some(p) = &self.inner {
            p.borrow_mut().cu_counts[cu].scratch_accesses += 1;
        }
    }

    /// One active (issuing) cycle on `cu`.
    #[inline]
    pub fn cu_active(&self, cu: usize) {
        if let Some(p) = &self.inner {
            p.borrow_mut().cu_counts[cu].cu_active_cycles += 1;
        }
    }

    // ---- hot-line sketches (engine + protocol hooks) ----

    /// A program access to `line` from the L1 at `node`.
    #[inline]
    pub fn line_access(&self, node: usize, line: LineAddr) {
        if let Some(p) = &self.inner {
            p.borrow_mut().l1_sketches[node].add(line, LineTally::access());
        }
    }

    /// `words` of `line` invalidated by an acquire sweep at `node`.
    #[inline]
    pub fn line_invalidated(&self, node: usize, line: LineAddr, words: u64) {
        if words == 0 {
            return;
        }
        if let Some(p) = &self.inner {
            p.borrow_mut().l1_sketches[node].add(line, LineTally::invalidated(words));
        }
    }

    /// An L2/registry operation on `line`.
    #[inline]
    pub fn l2_access(&self, line: LineAddr) {
        if let Some(p) = &self.inner {
            p.borrow_mut().l2_sketch.add(line, LineTally::access());
        }
    }

    /// `words` of `line` changed registered owner (ping-pong).
    #[inline]
    pub fn ownership_transfer(&self, line: LineAddr, words: u64) {
        if words == 0 {
            return;
        }
        if let Some(p) = &self.inner {
            p.borrow_mut()
                .l2_sketch
                .add(line, LineTally::transferred(words));
        }
    }

    /// A registry forward targeting `line`.
    #[inline]
    pub fn registry_forward(&self, line: LineAddr) {
        if let Some(p) = &self.inner {
            p.borrow_mut().l2_sketch.add(line, LineTally::forward());
        }
    }

    // ---- interval sampling ----

    /// Records one interval sample (the engine gathers the values).
    pub fn record_sample(&self, s: IntervalSample) {
        if let Some(p) = &self.inner {
            p.borrow_mut().ring.push(s);
        }
    }

    // ---- report ----

    /// Flushes the attribution tails and assembles the report. Leaves
    /// the profiler drained; `None` when disabled.
    pub fn take_report(&self, inputs: ReportInputs) -> Option<ProfileReport> {
        let p = self.inner.as_ref()?;
        let mut p = p.borrow_mut();
        let gpu_cus = p.gpu_cus;
        let spec = p.spec;
        for a in &mut p.attr {
            a.finish(inputs.end);
        }
        let cus: Vec<CuRow> = (0..gpu_cus)
            .map(|cu| {
                let mut counts = p.cu_counts[cu];
                if let Some(l1) = inputs.l1_counts.get(cu) {
                    counts += *l1;
                }
                CuRow {
                    buckets: p.attr[cu].buckets,
                    counts,
                }
            })
            .collect();
        // Everything outside the CU rows: non-CU L1s (the functional
        // CPU node), the L2, and the mesh counters — so the rows plus
        // this residual sum exactly to the global `Counts`.
        let mut other = Counts::default();
        for l1 in inputs.l1_counts.iter().skip(gpu_cus) {
            other += *l1;
        }
        other += inputs.l2_counts;
        other.messages_sent = inputs.messages_sent;
        other.flit_hops = inputs.flit_hops;
        // Merge the per-L1 sketches and the L2 sketch by line.
        let mut merged: Vec<(LineAddr, LineTally, u64)> = Vec::new();
        let mut sketch_updates = 0u64;
        for sk in &p.l1_sketches {
            sketch_updates += sk.total();
            merge_rows(&mut merged, sk.rows());
        }
        sketch_updates += p.l2_sketch.total();
        merge_rows(&mut merged, p.l2_sketch.rows());
        // Rank by total weight descending, line address ascending on
        // ties, so reports are deterministic.
        merged.sort_by(|a, b| (b.1.weight() + b.2, a.0).cmp(&(a.1.weight() + a.2, b.0)));
        let hot_lines = merged
            .into_iter()
            .map(|(line, t, err)| crate::report::HotLine {
                line: line.0,
                region: None,
                accesses: t.accesses,
                invalidations: t.invalidations,
                transfers: t.transfers,
                forwards: t.forwards,
                err,
            })
            .collect();
        let ring = std::mem::take(&mut p.ring);
        let (samples, dropped_samples) = ring.into_parts();
        Some(ProfileReport {
            cycles: inputs.end,
            interval: spec.interval.max(1),
            cus,
            other,
            hot_lines,
            sketch_capacity: spec.sketch_lines,
            sketch_updates,
            samples,
            dropped_samples,
        })
    }
}

/// Merges sketch rows into an accumulator keyed by line (both sides
/// sorted or small; linear scan keeps it simple and deterministic).
fn merge_rows(acc: &mut Vec<(LineAddr, LineTally, u64)>, rows: Vec<(LineAddr, LineTally, u64)>) {
    for (line, tally, err) in rows {
        if let Some(e) = acc.iter_mut().find(|(l, _, _)| *l == line) {
            e.1.merge(&tally);
            e.2 += err;
        } else {
            acc.push((line, tally, err));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::NUM_STALL_KINDS;

    fn inputs(end: Cycle, nodes: usize) -> ReportInputs {
        ReportInputs {
            end,
            l1_counts: vec![Counts::default(); nodes],
            l2_counts: Counts::default(),
            messages_sent: 0,
            flit_hops: 0,
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = ProfHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(h.sample_interval(), Cycle::MAX);
        h.tick(0, 5, StallKind::Issue, None);
        h.instr(0);
        h.line_access(0, LineAddr(1));
        assert!(h.take_report(inputs(10, 2)).is_none());
        assert!(!ProfHandle::new(ProfSpec::off(), 4, 5).is_enabled());
    }

    #[test]
    fn shared_handles_reach_one_profiler() {
        let h = ProfHandle::new(ProfSpec::on(), 2, 3);
        let clone = h.share();
        h.instr(0);
        clone.instr(0);
        clone.line_access(1, LineAddr(9));
        let r = h.take_report(inputs(100, 3)).unwrap();
        assert_eq!(r.cus[0].counts.instructions, 2);
        assert_eq!(r.hot_lines.len(), 1);
        assert_eq!(r.hot_lines[0].line, 9);
    }

    #[test]
    fn report_charges_tails_to_cycles() {
        let h = ProfHandle::new(ProfSpec::on(), 2, 2);
        h.set_state(0, 0, StallKind::Issue);
        h.tick(0, 10, StallKind::Issue, Some(StallKind::GlobalSpin));
        let r = h.take_report(inputs(50, 2)).unwrap();
        for cu in &r.cus {
            let total: u64 = cu.buckets.iter().sum();
            assert_eq!(total, 50, "buckets must sum to cycles");
        }
        assert_eq!(r.cus.len(), 2);
        assert_eq!(r.cus[0].buckets.len(), NUM_STALL_KINDS);
    }
}
