#![warn(missing_docs)]

//! GPUWattch/McPAT-style dynamic energy model for the `gpu-denovo`
//! simulator (paper §5.2).
//!
//! The paper reports *relative* dynamic energy split into five
//! components: GPU core+ (pipeline, register file, scheduler, FPU,
//! instruction cache), scratchpad, L1 data cache, L2 cache, and network.
//! This crate converts the raw event counters every simulator component
//! maintains ([`Counts`]) plus the flit-crossing traffic
//! ([`TrafficBreakdown`]) into that five-way [`EnergyBreakdown`], using
//! per-event energies in the published ballpark for a ~32 nm GPU. The
//! absolute joules are not meaningful — only the ratios between
//! configurations are (see DESIGN.md §1).
//!
//! The CPU core and CPU L1 carry no energy, exactly as in the paper
//! ("the CPU is only functionally simulated").
//!
//! # Examples
//!
//! ```
//! use gsim_energy::EnergyModel;
//! use gsim_types::{Counts, TrafficBreakdown};
//!
//! let model = EnergyModel::micro15();
//! let counts = Counts {
//!     instructions: 1000,
//!     l1_accesses: 300,
//!     ..Counts::default()
//! };
//! let e = model.energy(&counts, &TrafficBreakdown::default());
//! assert!(e.core_pj > e.l1_pj);
//! assert_eq!(e.noc_pj, 0.0);
//! ```

use gsim_types::{Counts, EnergyBreakdown, TrafficBreakdown};

/// Per-event dynamic energies, in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Per executed instruction: pipeline, register file, scheduler,
    /// FPU, and instruction cache (the paper's "GPU core+").
    pub instruction_pj: f64,
    /// Per scratchpad access.
    pub scratch_access_pj: f64,
    /// Per L1 data-cache access (tag + data array).
    pub l1_access_pj: f64,
    /// Per word self-invalidated at an acquire (state-bit write).
    pub l1_invalidate_word_pj: f64,
    /// Per full-cache flash-invalidate trigger (GPU acquires).
    pub l1_flash_pj: f64,
    /// Per L2 bank access (data or registry operation).
    pub l2_access_pj: f64,
    /// Per DRAM line access (charged to the L2 component: the paper
    /// folds the memory controller into the L2's column).
    pub dram_access_pj: f64,
    /// Per flit-hop (router traversal + link).
    pub flit_hop_pj: f64,
}

impl EnergyModel {
    /// Ballpark per-event energies for the paper's ~GTX 480-class GPU.
    ///
    /// Sources of the orders of magnitude: GPUWattch/McPAT-style models
    /// of a 32 KB 8-way SRAM (~20 pJ/access), a 256 KB bank
    /// (~50 pJ/access), a 16 B-flit mesh router+link (~12 pJ/hop), and
    /// ~25 pJ of core-side energy per executed instruction.
    pub fn micro15() -> Self {
        EnergyModel {
            instruction_pj: 25.0,
            scratch_access_pj: 10.0,
            l1_access_pj: 20.0,
            l1_invalidate_word_pj: 0.4,
            l1_flash_pj: 10.0,
            l2_access_pj: 50.0,
            dram_access_pj: 200.0,
            flit_hop_pj: 12.0,
        }
    }

    /// Converts event counts and traffic into the paper's five-way
    /// energy breakdown.
    pub fn energy(&self, counts: &Counts, traffic: &TrafficBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            core_pj: counts.instructions as f64 * self.instruction_pj,
            scratch_pj: counts.scratch_accesses as f64 * self.scratch_access_pj,
            l1_pj: counts.l1_accesses as f64 * self.l1_access_pj
                + counts.words_invalidated as f64 * self.l1_invalidate_word_pj
                + counts.flash_invalidations as f64 * self.l1_flash_pj,
            l2_pj: counts.l2_accesses as f64 * self.l2_access_pj
                + (counts.dram_reads + counts.dram_writes) as f64 * self.dram_access_pj,
            noc_pj: traffic.total() as f64 * self.flit_hop_pj,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::micro15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_types::MsgClass;

    #[test]
    fn components_map_to_their_counters() {
        let m = EnergyModel::micro15();
        let mut c = Counts::default();
        let mut t = TrafficBreakdown::default();
        assert_eq!(m.energy(&c, &t).total_pj(), 0.0);

        c.instructions = 10;
        let e = m.energy(&c, &t);
        assert_eq!(e.core_pj, 250.0);
        assert_eq!(e.l1_pj + e.l2_pj + e.noc_pj + e.scratch_pj, 0.0);

        c.l1_accesses = 4;
        c.flash_invalidations = 1;
        c.words_invalidated = 10;
        let e = m.energy(&c, &t);
        assert_eq!(e.l1_pj, 4.0 * 20.0 + 10.0 + 4.0);

        c.l2_accesses = 2;
        c.dram_reads = 1;
        let e = m.energy(&c, &t);
        assert_eq!(e.l2_pj, 100.0 + 200.0);

        t.record(MsgClass::Read, 5, 2);
        let e = m.energy(&c, &t);
        assert_eq!(e.noc_pj, 120.0);
    }

    #[test]
    fn network_energy_scales_with_traffic_not_messages() {
        // The same message over more hops costs proportionally more —
        // the locality effects the paper measures.
        let m = EnergyModel::micro15();
        let c = Counts::default();
        let mut near = TrafficBreakdown::default();
        near.record(MsgClass::Atomic, 2, 1);
        let mut far = TrafficBreakdown::default();
        far.record(MsgClass::Atomic, 2, 6);
        assert_eq!(m.energy(&c, &far).noc_pj, 6.0 * m.energy(&c, &near).noc_pj);
    }

    #[test]
    fn default_is_micro15() {
        assert_eq!(EnergyModel::default(), EnergyModel::micro15());
    }
}
