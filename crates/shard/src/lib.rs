#![warn(missing_docs)]

//! Scaffolding for sharded (parallel) simulation of a single run.
//!
//! The sharded engine (DESIGN.md §7i) partitions the machine's nodes —
//! each node is one CU + L1 plus the co-located L2 bank — into
//! contiguous ranges, gives each shard its own calendar event queue,
//! and advances all shards one populated cycle at a time under
//! conservative synchronization. This crate holds the engine-agnostic
//! pieces:
//!
//! * [`Partition`]: the contiguous node-range split and its lookup.
//! * [`TokenWalk`]: the deterministic interleaver that reconstructs the
//!   sequential engine's global `(cycle, seq)` processing order at an
//!   epoch barrier from per-shard in-order logs — the heart of the
//!   byte-identity argument.
//! * [`ShardSpec`]: validated shard-count + lookahead parameters.
//!
//! # Why the token walk reconstructs the sequential order
//!
//! The sequential engine pops one global FIFO per cycle: the events
//! scheduled for cycle `t`, in push (`seq`) order, followed by any
//! events pushed *at* `t` during their processing, appended in
//! processing order. A shard that processes only its own events in its
//! own FIFO order therefore executes exactly the *projection* of the
//! global order onto its nodes — same-cycle cross-shard events cannot
//! interact within the cycle (every message between components takes at
//! least one cycle), so the projection loses nothing. What the barrier
//! must recover is the global *interleaving*: which shard's entry came
//! next, so that cross-shard effects (NoC sends, future event pushes,
//! race-detector operations) replay in sequential order. [`TokenWalk`]
//! does this with tokens: seed a virtual FIFO with the known global
//! order of the cycle's initially queued events; each popped token
//! consumes that shard's next log entry; an entry that pushed `k`
//! same-cycle events appends `k` tokens for the same shard (same-cycle
//! pushes always target the shard's own nodes). The virtual FIFO then
//! evolves exactly like the sequential queue's cycle-`t` bucket.

use gsim_types::Cycle;
use std::collections::VecDeque;
use std::ops::Range;

/// A contiguous partition of `nodes` mesh nodes into at most `shards`
/// ranges of near-equal size.
///
/// Contiguity matters twice: the L2 bank at node `b` serves the lines
/// homed there, so bank ownership follows node ownership for free; and
/// the engine's CU iteration order (node-ascending) concatenated across
/// shards in shard order equals the sequential iteration order, which
/// keeps kernel-boundary work byte-identical without reordering.
///
/// # Examples
///
/// ```
/// use gsim_shard::Partition;
///
/// let p = Partition::new(16, 3);
/// assert_eq!(p.shards(), 3);
/// assert_eq!(p.range(0), 0..6);
/// assert_eq!(p.range(1), 6..11);
/// assert_eq!(p.range(2), 11..16);
/// assert_eq!(p.shard_of(5), 0);
/// assert_eq!(p.shard_of(6), 1);
/// assert_eq!(p.shard_of(15), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `bounds[s]..bounds[s + 1]` is shard `s`'s node range.
    bounds: Vec<usize>,
    /// Shard of each node (dense lookup; the hot path asks per event).
    owner: Vec<u8>,
}

impl Partition {
    /// Splits `nodes` into `min(shards, nodes)` contiguous ranges, the
    /// first `nodes % shards` ranges one node larger.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is 0, `shards` is 0, or the effective shard
    /// count exceeds 256 (`shard_of` returns `u8`).
    pub fn new(nodes: usize, shards: usize) -> Partition {
        assert!(nodes > 0, "cannot partition zero nodes");
        assert!(shards > 0, "cannot partition into zero shards");
        let shards = shards.min(nodes);
        assert!(shards <= 256, "at most 256 shards supported");
        let (base, extra) = (nodes / shards, nodes % shards);
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut owner = Vec::with_capacity(nodes);
        let mut at = 0;
        bounds.push(0);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            bounds.push(at);
            while owner.len() < at {
                owner.push(s as u8);
            }
        }
        debug_assert_eq!(at, nodes);
        Partition { bounds, owner }
    }

    /// Number of shards (never more than the node count).
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total nodes partitioned.
    pub fn nodes(&self) -> usize {
        self.owner.len()
    }

    /// The node range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The shard owning `node`.
    #[inline]
    pub fn shard_of(&self, node: usize) -> usize {
        self.owner[node] as usize
    }

    /// Iterates `(shard, node_range)` in shard order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Range<usize>)> + '_ {
        (0..self.shards()).map(|s| (s, self.range(s)))
    }
}

/// Validated sharded-engine parameters.
///
/// `lookahead` is the conservative cross-shard latency bound: no
/// message generated at cycle `t` whose destination lies in another
/// shard may arrive before `t + lookahead`. The engine derives it from
/// the mesh's minimum remote latency
/// (`MeshConfig::min_remote_latency()` in `gsim-noc`) and asserts it on
/// every cross-shard delivery at runtime; it bounds how far shards
/// *could* drift apart without exchanging messages, and a violation
/// means the NoC timing model broke the conservative-parallelism
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Requested shard count (clamped to the node count at partition
    /// time).
    pub shards: usize,
    /// Minimum cross-shard message latency in cycles (≥ 1).
    pub lookahead: Cycle,
}

impl ShardSpec {
    /// Creates a spec, validating both parameters.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or `lookahead` is 0 (a zero lookahead
    /// would permit same-cycle cross-shard interaction, which the epoch
    /// protocol cannot order).
    pub fn new(shards: usize, lookahead: Cycle) -> ShardSpec {
        assert!(shards > 0, "shard count must be at least 1");
        assert!(lookahead > 0, "lookahead must be at least 1 cycle");
        ShardSpec { shards, lookahead }
    }
}

/// The deterministic epoch-barrier interleaver (see the crate docs for
/// the argument that this reconstructs the sequential order).
///
/// Seed it with the global push order of the cycle's initially queued
/// events (as shard indices); then repeatedly [`next`](TokenWalk::next)
/// a shard, replay that shard's next log entry, and
/// [`spawn`](TokenWalk::spawn) once per same-cycle event the entry
/// pushed. The walk ends when every log is consumed.
///
/// # Examples
///
/// ```
/// use gsim_shard::TokenWalk;
///
/// // Cycle bucket held [shard 0, shard 1]; shard 0's first entry
/// // pushed one same-cycle event.
/// let mut w = TokenWalk::new([0, 1]);
/// assert_eq!(w.next(), Some(0));
/// w.spawn(0); // appends behind shard 1's initial event
/// assert_eq!(w.next(), Some(1));
/// assert_eq!(w.next(), Some(0));
/// assert_eq!(w.next(), None);
/// ```
#[derive(Debug, Default)]
pub struct TokenWalk {
    fifo: VecDeque<usize>,
}

impl TokenWalk {
    /// Seeds the walk with the cycle's initial events' shards, in
    /// global push order.
    pub fn new(initial: impl IntoIterator<Item = usize>) -> TokenWalk {
        TokenWalk {
            fifo: initial.into_iter().collect(),
        }
    }

    /// Records that the entry just replayed pushed one same-cycle event
    /// (always onto its own shard's queue).
    #[inline]
    pub fn spawn(&mut self, shard: usize) {
        self.fifo.push_back(shard);
    }

    /// Tokens not yet consumed.
    pub fn remaining(&self) -> usize {
        self.fifo.len()
    }
}

/// Yields the shard whose log entry is globally next; exhausted when
/// the cycle is fully replayed. Interleaved [`TokenWalk::spawn`] calls
/// extend the walk mid-iteration, which is the point: the iterator is
/// the cycle's global processing order unfolding.
impl Iterator for TokenWalk {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        self.fifo.pop_front()
    }
}

/// Reference interleaver for tests: given per-shard logs where entry
/// `i` of shard `s` pushed `spawns[s][i]` same-cycle events, and the
/// initial global push order, returns the global processing order as
/// `(shard, entry_index)` pairs.
pub fn interleave(initial: &[usize], spawns: &[Vec<usize>]) -> Vec<(usize, usize)> {
    let mut walk = TokenWalk::new(initial.iter().copied());
    let mut cursor = vec![0usize; spawns.len()];
    let mut order = Vec::new();
    while let Some(s) = walk.next() {
        let i = cursor[s];
        cursor[s] += 1;
        for _ in 0..spawns[s][i] {
            walk.spawn(s);
        }
        order.push((s, i));
    }
    for (s, c) in cursor.iter().enumerate() {
        assert_eq!(*c, spawns[s].len(), "shard {s} log not fully consumed");
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_types::Rng64;

    #[test]
    fn partition_shapes() {
        let p = Partition::new(16, 1);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.range(0), 0..16);

        let p = Partition::new(16, 4);
        assert_eq!(
            (0..4).map(|s| p.range(s)).collect::<Vec<_>>(),
            vec![0..4, 4..8, 8..12, 12..16]
        );

        // More shards than nodes clamps.
        let p = Partition::new(3, 8);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.range(2), 2..3);

        // Uneven splits put the extra nodes first.
        let p = Partition::new(16, 5);
        assert_eq!(
            (0..5).map(|s| p.range(s)).collect::<Vec<_>>(),
            vec![0..4, 4..7, 7..10, 10..13, 13..16]
        );
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        for shards in 1..=16 {
            let p = Partition::new(16, shards);
            for (s, range) in p.iter() {
                for n in range {
                    assert_eq!(p.shard_of(n), s);
                }
            }
            // Ranges tile the node set exactly.
            let total: usize = p.iter().map(|(_, r)| r.len()).sum();
            assert_eq!(total, 16);
            assert_eq!(p.range(0).start, 0);
            assert_eq!(p.range(p.shards() - 1).end, 16);
        }
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_shards_panics() {
        let _ = Partition::new(16, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 cycle")]
    fn zero_lookahead_panics() {
        let _ = ShardSpec::new(2, 0);
    }

    #[test]
    fn token_walk_matches_a_single_queue_simulation() {
        // Model: a single global FIFO of (shard, entry) vs the token
        // walk over per-shard logs. Randomized spawn structure.
        let mut rng = Rng64::seed_from_u64(0x5a4d);
        for _ in 0..200 {
            let shards = rng.gen_usize(1, 5);
            let initial_len = rng.gen_usize(0, 12);
            let initial: Vec<usize> = (0..initial_len).map(|_| rng.gen_usize(0, shards)).collect();

            // Simulate the sequential global FIFO to build both the
            // expected order and the per-shard spawn logs.
            let mut fifo: VecDeque<usize> = initial.iter().copied().collect();
            let mut spawns: Vec<Vec<usize>> = vec![Vec::new(); shards];
            let mut expected = Vec::new();
            let mut budget = 64; // cap total spawned work
            while let Some(s) = fifo.pop_front() {
                let k = if budget > 0 { rng.gen_usize(0, 3) } else { 0 };
                budget -= k.min(budget);
                for _ in 0..k {
                    fifo.push_back(s); // same-cycle pushes stay on-shard
                }
                expected.push((s, spawns[s].len()));
                spawns[s].push(k);
            }

            assert_eq!(interleave(&initial, &spawns), expected);
        }
    }

    #[test]
    fn token_walk_projection_per_shard_is_in_order() {
        // Whatever the interleaving, each shard's entries replay in log
        // order — the projection property.
        let order = interleave(&[1, 0, 1, 0], &[vec![2, 0, 0, 0], vec![0, 1, 0]]);
        for s in 0..2 {
            let proj: Vec<usize> = order
                .iter()
                .filter(|&&(x, _)| x == s)
                .map(|&(_, i)| i)
                .collect();
            let want: Vec<usize> = (0..proj.len()).collect();
            assert_eq!(proj, want, "shard {s} replayed out of order");
        }
        assert_eq!(order.len(), 7);
    }
}
