//! Golden-file test of the Chrome trace exporter.
//!
//! A fixed event sequence covering every [`TraceEvent`] variant is
//! rendered and compared byte-for-byte against a checked-in reference.
//! Any change to the export format — field order, escaping, metadata,
//! the `otherData` footer — shows up as a readable diff here instead of
//! as a silently broken Perfetto import.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gsim-trace --test golden
//! ```

use gsim_trace::{
    chrome_json, chrome_json_with_counters, CounterTrack, FlushReason, Level, TraceEvent, WState,
};
use gsim_types::{Cycle, LineAddr, MsgClass, NodeId, Scope, SyncOrd, TbId, WordAddr};

/// One event of every variant, with balanced begin/end pairs, spread
/// over a handful of nodes and cycles.
fn fixture() -> Vec<(Cycle, TraceEvent)> {
    vec![
        (0, TraceEvent::KernelBegin { index: 0, tbs: 2 }),
        (
            0,
            TraceEvent::TbLaunch {
                tb: TbId(0),
                cu: NodeId(0),
            },
        ),
        (
            1,
            TraceEvent::TbLaunch {
                tb: TbId(1),
                cu: NodeId(5),
            },
        ),
        (
            3,
            TraceEvent::MshrAlloc {
                node: NodeId(0),
                line: LineAddr(16),
                outstanding: 1,
            },
        ),
        (
            3,
            TraceEvent::MsgSend {
                src: NodeId(0),
                dst: NodeId(12),
                class: MsgClass::Read,
                flits: 1,
                hops: 4,
                arrival: 9,
            },
        ),
        (
            9,
            TraceEvent::MsgDeliver {
                src: NodeId(0),
                dst: NodeId(12),
                class: MsgClass::Read,
            },
        ),
        (
            14,
            TraceEvent::StateChange {
                node: NodeId(0),
                level: Level::L1,
                line: LineAddr(16),
                words: 8,
                from: WState::Invalid,
                to: WState::Valid,
            },
        ),
        (
            14,
            TraceEvent::MshrRetire {
                node: NodeId(0),
                line: LineAddr(16),
                waiters: 1,
            },
        ),
        (
            20,
            TraceEvent::AtomicIssue {
                tb: TbId(1),
                cu: NodeId(5),
                word: WordAddr(5),
                ord: SyncOrd::AcqRel,
                scope: Scope::Global,
            },
        ),
        (
            20,
            TraceEvent::SyncRelease {
                node: NodeId(5),
                scope: Scope::Global,
            },
        ),
        (
            20,
            TraceEvent::SbFlushBegin {
                node: NodeId(5),
                reason: FlushReason::Release,
                pending: 3,
            },
        ),
        (26, TraceEvent::SbFlushEnd { node: NodeId(5) }),
        (
            27,
            TraceEvent::SyncAcquire {
                node: NodeId(5),
                scope: Scope::Global,
                invalidated: 12,
                flash: false,
            },
        ),
        (
            30,
            TraceEvent::Eviction {
                node: NodeId(0),
                level: Level::L1,
                line: LineAddr(16),
                owned_words: 2,
            },
        ),
        (
            31,
            TraceEvent::Eviction {
                node: NodeId(15),
                level: Level::L2,
                line: LineAddr(99),
                owned_words: 0,
            },
        ),
        (
            40,
            TraceEvent::TbRetire {
                tb: TbId(0),
                cu: NodeId(0),
            },
        ),
        (
            41,
            TraceEvent::TbRetire {
                tb: TbId(1),
                cu: NodeId(5),
            },
        ),
        (45, TraceEvent::KernelEnd { index: 0 }),
    ]
}

#[test]
fn chrome_export_matches_golden() {
    let json = chrome_json(&fixture(), 3);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_small.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        json, golden,
        "Chrome export changed; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

/// Two counter tracks mimicking the profiler's interval export.
fn counter_fixture() -> Vec<CounterTrack> {
    vec![
        CounterTrack {
            name: "ipc".into(),
            points: vec![(0, 0.0), (16, 1.5), (32, 0.75)],
        },
        CounterTrack {
            name: "l1-hit-rate".into(),
            points: vec![(16, 0.875), (32, 0.9375)],
        },
    ]
}

#[test]
fn chrome_counter_export_matches_golden() {
    let json = chrome_json_with_counters(&fixture(), 3, &counter_fixture());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_counters.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        json, golden,
        "Chrome counter export changed; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn counter_tracks_are_well_formed() {
    let json = chrome_json_with_counters(&fixture(), 3, &counter_fixture());
    // Every sample becomes one ph:"C" event.
    assert_eq!(json.matches("\"ph\":\"C\"").count(), 5);
    // The counters process and each track are named exactly once.
    assert_eq!(json.matches("\"name\":\"counters\"").count(), 1);
    assert_eq!(
        json.matches(
            "\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":3"
        )
        .count(),
        1
    );
    assert_eq!(
        json.matches(
            "\"name\":\"thread_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":3"
        )
        .count(),
        2
    );
    // Counter values travel in args.value.
    assert!(json.contains("\"args\":{\"value\":1.5}"));
    assert!(json.contains("\"args\":{\"value\":0.9375}"));
}

#[test]
fn empty_counter_list_matches_plain_export() {
    assert_eq!(
        chrome_json_with_counters(&fixture(), 3, &[]),
        chrome_json(&fixture(), 3),
        "no counters must mean no format change"
    );
}

#[test]
fn golden_fixture_covers_every_category() {
    let cats: std::collections::BTreeSet<&str> = fixture()
        .iter()
        .map(|(_, ev)| ev.category().label())
        .collect();
    assert_eq!(
        cats.into_iter().collect::<Vec<_>>(),
        ["cache", "kernel", "mshr", "noc", "protocol", "sb", "sync", "tb"]
    );
}
