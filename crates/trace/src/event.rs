//! The structured event taxonomy every instrumented component emits.
//!
//! Events are small `Copy` values — constructing one is a handful of
//! register moves, and construction only happens when a sink is
//! installed (the [`TraceHandle::emit`](crate::TraceHandle::emit) hook
//! takes a closure). Each event belongs to a [`Category`], the coarse
//! grouping exporters and filters key on.

use gsim_types::{Cycle, LineAddr, MsgClass, NodeId, Scope, SyncOrd, TbId, WordAddr};
use std::fmt;

/// Coarse event grouping (the Chrome trace-event `cat` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Thread-block lifecycle (launch/retire).
    Tb,
    /// Kernel-launch boundaries.
    Kernel,
    /// Synchronization operations (acquire/release, lock/barrier traffic).
    Sync,
    /// Coherence-protocol word-state transitions.
    Protocol,
    /// Cache structural events (evictions, invalidations).
    Cache,
    /// Store-buffer flush activity.
    Sb,
    /// MSHR allocate/retire.
    Mshr,
    /// Network-on-chip message traffic.
    Noc,
    /// Conformance-checker violations (gsim-check).
    Check,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 9] = [
        Category::Tb,
        Category::Kernel,
        Category::Sync,
        Category::Protocol,
        Category::Cache,
        Category::Sb,
        Category::Mshr,
        Category::Noc,
        Category::Check,
    ];

    /// The lowercase label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            Category::Tb => "tb",
            Category::Kernel => "kernel",
            Category::Sync => "sync",
            Category::Protocol => "protocol",
            Category::Cache => "cache",
            Category::Sb => "sb",
            Category::Mshr => "mshr",
            Category::Noc => "noc",
            Category::Check => "check",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which cache level an event concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// A per-CU L1 data cache.
    L1,
    /// A bank of the shared L2 (the DeNovo registry).
    L2,
}

impl Level {
    /// Short label for export.
    pub fn label(self) -> &'static str {
        match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
        }
    }
}

/// A word's coherence state as seen by the trace layer.
///
/// Mirrors the protocols' word states without depending on their
/// internal representations: GPU lines are Invalid/Valid, DeNovo words
/// add Owned (registered).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WState {
    /// Not present / self-invalidated.
    Invalid,
    /// Present and readable, not owned.
    Valid,
    /// Registered (owned) — DeNovo's dirty/exclusive state.
    Owned,
}

impl WState {
    /// Short label for export.
    pub fn label(self) -> &'static str {
        match self {
            WState::Invalid => "I",
            WState::Valid => "V",
            WState::Owned => "O",
        }
    }
}

/// Why a store buffer began draining.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// A release (or acq-rel) synchronization operation.
    Release,
    /// A kernel boundary (implicit global release).
    KernelEnd,
    /// Capacity overflow forced an early flush.
    Overflow,
}

impl FlushReason {
    /// Short label for export.
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::Release => "release",
            FlushReason::KernelEnd => "kernel-end",
            FlushReason::Overflow => "overflow",
        }
    }
}

/// One structured trace event.
///
/// The `Cycle` timestamp is *not* part of the event — the
/// [`TraceHandle`](crate::TraceHandle) stamps it at record time, so
/// emitting components never need to know the current cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A thread block became resident on a CU.
    TbLaunch {
        /// The launched block.
        tb: TbId,
        /// Its CU's node.
        cu: NodeId,
    },
    /// A thread block halted.
    TbRetire {
        /// The retiring block.
        tb: TbId,
        /// Its CU's node.
        cu: NodeId,
    },
    /// A kernel launch began (all its blocks become runnable).
    KernelBegin {
        /// Kernel index within the workload.
        index: u32,
        /// Number of thread blocks in the launch.
        tbs: u32,
    },
    /// A kernel completed (all blocks halted, store buffers drained).
    KernelEnd {
        /// Kernel index within the workload.
        index: u32,
    },
    /// An acquire-side synchronization performed at a cache: the
    /// invalidation sweep (DeNovo: valid-word self-invalidation; GPU:
    /// flash invalidate).
    SyncAcquire {
        /// The acquiring L1's node.
        node: NodeId,
        /// The synchronization scope.
        scope: Scope,
        /// Words invalidated by the sweep.
        invalidated: u64,
        /// Whether the whole cache was flash-invalidated (GPU protocol).
        flash: bool,
    },
    /// A release-side synchronization began (store-buffer drain ordered
    /// before the releasing access).
    SyncRelease {
        /// The releasing L1's node.
        node: NodeId,
        /// The synchronization scope.
        scope: Scope,
    },
    /// A synchronization (atomic) operation issued by a thread block.
    AtomicIssue {
        /// The issuing block.
        tb: TbId,
        /// The issuing L1's node.
        cu: NodeId,
        /// Target word.
        word: WordAddr,
        /// Ordering attribute.
        ord: SyncOrd,
        /// Scope attribute (Global under DRF).
        scope: Scope,
    },
    /// A word (range) changed coherence state.
    StateChange {
        /// The cache's node.
        node: NodeId,
        /// Which level.
        level: Level,
        /// The line containing the words.
        line: LineAddr,
        /// How many words transitioned.
        words: u32,
        /// State before.
        from: WState,
        /// State after.
        to: WState,
    },
    /// A line was evicted from a cache.
    Eviction {
        /// The cache's node.
        node: NodeId,
        /// Which level.
        level: Level,
        /// The victim line.
        line: LineAddr,
        /// Owned words written back (DeNovo) or dirty words lost (0 for
        /// clean GPU lines).
        owned_words: u32,
    },
    /// Store-buffer drain began.
    SbFlushBegin {
        /// The L1's node.
        node: NodeId,
        /// Why the drain started.
        reason: FlushReason,
        /// Entries pending at drain start.
        pending: u32,
    },
    /// Store-buffer drain completed (all writes acknowledged).
    SbFlushEnd {
        /// The L1's node.
        node: NodeId,
    },
    /// An MSHR entry was allocated for a missing line.
    MshrAlloc {
        /// The cache's node.
        node: NodeId,
        /// The missing line.
        line: LineAddr,
        /// Outstanding entries after allocation.
        outstanding: u32,
    },
    /// An MSHR entry retired (its fill arrived and waiters resumed).
    MshrRetire {
        /// The cache's node.
        node: NodeId,
        /// The filled line.
        line: LineAddr,
        /// Waiters woken by the fill.
        waiters: u32,
    },
    /// A message was injected into the mesh.
    MsgSend {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Traffic class.
        class: MsgClass,
        /// Payload size in flits.
        flits: u32,
        /// Links the XY route traverses.
        hops: u32,
        /// Cycle the message will arrive.
        arrival: Cycle,
    },
    /// A message was delivered to its destination component.
    MsgDeliver {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Traffic class.
        class: MsgClass,
    },
    /// The conformance checker recorded a violation. The full detail
    /// string lives in the [`CheckReport`](../gsim_check) the run
    /// returns; the event carries the violation's kind label so a trace
    /// timeline shows *when* the check tripped.
    CheckViolation {
        /// The violation kind's kebab-case label (e.g. "race",
        /// "quiesce-leak").
        kind: &'static str,
    },
}

impl TraceEvent {
    /// The event's category.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::TbLaunch { .. } | TraceEvent::TbRetire { .. } => Category::Tb,
            TraceEvent::KernelBegin { .. } | TraceEvent::KernelEnd { .. } => Category::Kernel,
            TraceEvent::SyncAcquire { .. }
            | TraceEvent::SyncRelease { .. }
            | TraceEvent::AtomicIssue { .. } => Category::Sync,
            TraceEvent::StateChange { .. } => Category::Protocol,
            TraceEvent::Eviction { .. } => Category::Cache,
            TraceEvent::SbFlushBegin { .. } | TraceEvent::SbFlushEnd { .. } => Category::Sb,
            TraceEvent::MshrAlloc { .. } | TraceEvent::MshrRetire { .. } => Category::Mshr,
            TraceEvent::MsgSend { .. } | TraceEvent::MsgDeliver { .. } => Category::Noc,
            TraceEvent::CheckViolation { .. } => Category::Check,
        }
    }

    /// A short human-readable event name (the Chrome `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TbLaunch { .. } => "tb-launch",
            TraceEvent::TbRetire { .. } => "tb-retire",
            TraceEvent::KernelBegin { .. } => "kernel-begin",
            TraceEvent::KernelEnd { .. } => "kernel-end",
            TraceEvent::SyncAcquire { .. } => "acquire",
            TraceEvent::SyncRelease { .. } => "release",
            TraceEvent::AtomicIssue { .. } => "atomic",
            TraceEvent::StateChange { .. } => "state-change",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::SbFlushBegin { .. } => "sb-flush",
            TraceEvent::SbFlushEnd { .. } => "sb-flush-end",
            TraceEvent::MshrAlloc { .. } => "mshr-alloc",
            TraceEvent::MshrRetire { .. } => "mshr-retire",
            TraceEvent::MsgSend { .. } => "msg-send",
            TraceEvent::MsgDeliver { .. } => "msg-deliver",
            TraceEvent::CheckViolation { .. } => "check-violation",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_the_taxonomy() {
        assert_eq!(Category::ALL.len(), 9);
        let ev = TraceEvent::TbLaunch {
            tb: TbId(1),
            cu: NodeId(0),
        };
        assert_eq!(ev.category(), Category::Tb);
        assert_eq!(ev.category().label(), "tb");
        assert_eq!(ev.name(), "tb-launch");
        let ev = TraceEvent::MsgDeliver {
            src: NodeId(0),
            dst: NodeId(1),
            class: MsgClass::Read,
        };
        assert_eq!(ev.category(), Category::Noc);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Level::L1.label(), "L1");
        assert_eq!(WState::Owned.label(), "O");
        assert_eq!(FlushReason::KernelEnd.label(), "kernel-end");
        assert_eq!(Category::Protocol.to_string(), "protocol");
    }
}
