#![warn(missing_docs)]

//! Structured event tracing for the `gpu-denovo` simulator.
//!
//! The simulator's headline numbers — cycles, traffic, energy — say
//! *how much*; this crate says *when* and *where*. Every protocol
//! controller, cache, store buffer, MSHR, the mesh, and the engine
//! itself carry a cloned [`TraceHandle`] and emit [`TraceEvent`]s
//! through it:
//!
//! | [`Category`] | events |
//! |---|---|
//! | `tb` | thread-block launch / retire |
//! | `kernel` | kernel-launch begin / end |
//! | `sync` | atomic issue, acquire invalidation sweeps, releases |
//! | `protocol` | word coherence-state transitions |
//! | `cache` | line evictions (with owned-word writeback counts) |
//! | `sb` | store-buffer drain begin / end |
//! | `mshr` | MSHR allocate / retire |
//! | `noc` | mesh message send (flits, hops) / deliver |
//!
//! # Cost model
//!
//! Tracing must never tax the untraced hot path: a disabled handle is
//! a `None`, [`TraceHandle::emit`] takes a closure, and the event is
//! only constructed when a sink is installed — the instrumentation
//! compiles to a single predictable branch per site otherwise.
//!
//! # Consuming traces
//!
//! Implement [`TraceSink`] for streaming consumption, or use the
//! bounded [`RingRecorder`] and export with [`to_chrome_json`] for
//! visual analysis in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`. [`chrome_json_with_counters`] additionally
//! renders [`CounterTrack`] time-series (the profiler's interval
//! samples — IPC, hit rates, occupancies) as Perfetto counter tracks
//! alongside the events, and [`chrome_json_full`] also renders
//! [`JourneySpan`] request journeys (gsim-flow's sampled per-request
//! waterfalls) as per-journey span tracks with flow arrows:
//!
//! ```
//! use gsim_trace::{to_chrome_json, RingRecorder, TraceEvent, TraceHandle};
//! use gsim_types::{NodeId, TbId};
//!
//! let handle = TraceHandle::new(RingRecorder::new(1 << 20));
//! // ... hand clones of `handle` to the simulator, run ...
//! handle.set_now(17);
//! handle.emit(|| TraceEvent::TbLaunch { tb: TbId(0), cu: NodeId(2) });
//! let json = to_chrome_json(&handle.recorder().unwrap().borrow());
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod chrome;
pub mod event;
pub mod sink;

pub use chrome::{
    chrome_json, chrome_json_full, chrome_json_with_counters, to_chrome_json, CounterTrack,
    JourneySpan,
};
pub use event::{Category, FlushReason, Level, TraceEvent, WState};
pub use sink::{RingRecorder, TraceHandle, TraceSink};
