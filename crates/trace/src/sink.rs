//! The [`TraceSink`] consumer API, the shared [`TraceHandle`] components
//! emit through, and the bounded [`RingRecorder`].
//!
//! # Zero cost when disabled
//!
//! A disabled handle is `None` inside: [`TraceHandle::emit`] takes a
//! *closure*, so the event is never even constructed unless a sink is
//! installed — the hook compiles down to one pointer test on the hot
//! path. The simulator is single-threaded by design (determinism is a
//! correctness property here), so the handle is an `Rc`, not an `Arc`,
//! and cloning it into every component is free of synchronization.

use crate::event::TraceEvent;
use gsim_types::Cycle;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// A consumer of structured trace events.
///
/// Implementations receive every event the instrumented simulator emits,
/// stamped with the cycle at which it happened. Events arrive in
/// deterministic simulation order (the engine is single-threaded and
/// tie-breaks by sequence number), so two runs of the same workload
/// produce identical event streams — a property the test suite asserts.
pub trait TraceSink: std::fmt::Debug {
    /// Records one event at simulated cycle `at`.
    fn record(&mut self, at: Cycle, ev: &TraceEvent);
}

struct Shared {
    now: Cell<Cycle>,
    sink: RefCell<Box<dyn TraceSink>>,
}

/// The cloneable handle instrumentation sites emit through.
///
/// Components store a clone; the simulation engine advances the shared
/// clock with [`set_now`](TraceHandle::set_now) as it dispatches events,
/// so emitting components never need to thread the current cycle around.
///
/// # Examples
///
/// ```
/// use gsim_trace::{RingRecorder, TraceEvent, TraceHandle};
/// use gsim_types::{NodeId, TbId};
///
/// let off = TraceHandle::disabled();
/// off.emit(|| unreachable!("closure never runs when disabled"));
///
/// let on = TraceHandle::new(RingRecorder::new(16));
/// on.set_now(42);
/// on.emit(|| TraceEvent::TbLaunch { tb: TbId(0), cu: NodeId(0) });
/// let events = on.recorder().unwrap().borrow().to_vec();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].0, 42);
/// ```
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Rc<Shared>>,
    recorder: Option<Rc<RefCell<RingRecorder>>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl TraceHandle {
    /// A handle with no sink: every [`emit`](Self::emit) is a no-op and
    /// its closure is never evaluated.
    pub fn disabled() -> Self {
        TraceHandle {
            inner: None,
            recorder: None,
        }
    }

    /// A handle recording into a [`RingRecorder`], which stays reachable
    /// through [`recorder`](Self::recorder) after the run.
    pub fn new(recorder: RingRecorder) -> Self {
        let rec = Rc::new(RefCell::new(recorder));
        TraceHandle {
            inner: Some(Rc::new(Shared {
                now: Cell::new(0),
                sink: RefCell::new(Box::new(SharedRingSink(rec.clone()))),
            })),
            recorder: Some(rec),
        }
    }

    /// A handle feeding an arbitrary [`TraceSink`].
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        TraceHandle {
            inner: Some(Rc::new(Shared {
                now: Cell::new(0),
                sink: RefCell::new(sink),
            })),
            recorder: None,
        }
    }

    /// Another handle on the same shared sink and clock — what each
    /// simulated component stores. Spelled as a method (rather than
    /// `Clone`) at the call sites so wiring code reads as sharing one
    /// sink, not copying a tracer.
    #[inline]
    pub fn share(&self) -> TraceHandle {
        self.clone()
    }

    /// Whether a sink is installed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the shared clock; called by the engine at each
    /// discrete-event dispatch.
    #[inline]
    pub fn set_now(&self, cycle: Cycle) {
        if let Some(inner) = &self.inner {
            inner.now.set(cycle);
        }
    }

    /// Emits an event. The closure is evaluated only when a sink is
    /// installed, so instrumentation sites cost one branch when tracing
    /// is off.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            let ev = f();
            inner.sink.borrow_mut().record(inner.now.get(), &ev);
        }
    }

    /// The ring recorder behind a handle built with [`new`](Self::new);
    /// `None` for disabled or custom-sink handles.
    pub fn recorder(&self) -> Option<&Rc<RefCell<RingRecorder>>> {
        self.recorder.as_ref()
    }
}

/// Adapter so a shared `RingRecorder` can be installed as the sink while
/// remaining readable through [`TraceHandle::recorder`].
#[derive(Debug)]
struct SharedRingSink(Rc<RefCell<RingRecorder>>);

impl TraceSink for SharedRingSink {
    fn record(&mut self, at: Cycle, ev: &TraceEvent) {
        self.0.borrow_mut().record(at, ev);
    }
}

/// A bounded in-memory recorder: keeps the most recent `capacity`
/// events and counts how many older ones it had to drop.
///
/// Bounding matters: a paper-scale run emits hundreds of millions of
/// events, and an unbounded buffer would dwarf the simulated machine.
/// The ring keeps the *tail* of the stream — usually what you want when
/// staring at the cycles right before a hang or at steady-state
/// behaviour — and the drop count keeps the truncation honest.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<(Cycle, TraceEvent)>,
    dropped: u64,
}

impl RingRecorder {
    /// A recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The recorded `(cycle, event)` pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Cycle, TraceEvent)> {
        self.events.iter()
    }

    /// The recorded pairs as an owned vector (oldest first).
    pub fn to_vec(&self) -> Vec<(Cycle, TraceEvent)> {
        self.events.iter().copied().collect()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, at: Cycle, ev: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, *ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use gsim_types::{NodeId, TbId};

    fn ev(n: u32) -> TraceEvent {
        TraceEvent::TbLaunch {
            tb: TbId(n),
            cu: NodeId(0),
        }
    }

    #[test]
    fn disabled_handle_never_evaluates() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        h.set_now(99);
        h.emit(|| panic!("must not run"));
        assert!(h.recorder().is_none());
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_drops() {
        let mut r = RingRecorder::new(3);
        for i in 0..5 {
            r.record(i as u64, &ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.events().map(|(c, _)| *c).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn handle_stamps_the_shared_clock() {
        let h = TraceHandle::new(RingRecorder::new(8));
        assert!(h.is_enabled());
        h.emit(|| ev(0));
        h.set_now(10);
        h.emit(|| ev(1));
        h.set_now(25);
        let h2 = h.clone();
        h2.emit(|| ev(2)); // clones share clock and sink
        let got = h.recorder().unwrap().borrow().to_vec();
        assert_eq!(
            got.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![0, 10, 25]
        );
        assert_eq!(got[2].1, ev(2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingRecorder::new(0);
        r.record(1, &ev(0));
        r.record(2, &ev(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
