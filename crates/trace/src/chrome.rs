//! Dependency-free Chrome/Perfetto trace-event JSON export.
//!
//! The output is the Trace Event Format's "JSON object" flavour —
//! `{"traceEvents": [...]}` — which loads directly in
//! <https://ui.perfetto.dev> and `chrome://tracing`. The mapping:
//!
//! * **pid 0, "memory-system"** — one track (`tid`) per mesh node.
//!   Protocol, cache, MSHR, sync, and NoC events appear as instant
//!   events on their node's track; store-buffer drains appear as
//!   duration slices.
//! * **pid 1, "thread-blocks"** — one track per thread block; its
//!   residency (launch→retire) is a duration slice, so CU occupancy
//!   reads straight off the timeline.
//! * **pid 2, "kernels"** — one duration slice per kernel launch.
//!
//! Timestamps are simulated GPU cycles written into the `ts`
//! (microsecond) field: 1 µs on screen = 1 cycle, which keeps the
//! numbers readable without a fake clock-frequency conversion.
//!
//! Since a [`RingRecorder`] keeps only the tail of the stream, a
//! duration *end* can arrive whose *begin* was evicted; such orphans
//! are downgraded to instant events so the JSON always nests cleanly.

use crate::event::TraceEvent;
use crate::sink::RingRecorder;
use gsim_types::Cycle;
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

const PID_MEM: u32 = 0;
const PID_TB: u32 = 1;
const PID_KERNEL: u32 = 2;
const PID_COUNTER: u32 = 3;
const PID_JOURNEY: u32 = 4;

/// One named counter series — rendered under **pid 3, "counters"** as
/// `ph:"C"` events, which Perfetto draws as a step-line track. The
/// profiler's interval time-series export produces these (IPC, hit
/// rate, occupancy gauges); any `(cycle, value)` series works.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterTrack {
    /// Track name shown in the UI (e.g. `"ipc"`).
    pub name: String,
    /// `(cycle, value)` samples, oldest first.
    pub points: Vec<(Cycle, f64)>,
}

impl CounterTrack {
    /// An empty track named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CounterTrack {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, cycle: Cycle, value: f64) {
        self.points.push((cycle, value));
    }
}

/// One sampled request journey rendered under **pid 4, "journeys"**:
/// each journey gets its own track, every pipeline stage becomes a
/// duration slice, and a flow arrow (`ph:"s"`/`ph:"f"`) with the
/// journey's id connects issue to completion. `gsim-flow`'s report
/// produces these; any contiguous `(label, start, end)` stage list
/// works.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JourneySpan {
    /// Flow-event id (the request id for simulator journeys).
    pub id: u64,
    /// Track name shown in the UI (e.g. `"load req 65 cu3"`).
    pub name: String,
    /// `(label, start, end)` stages, oldest first, non-overlapping.
    pub stages: Vec<(String, Cycle, Cycle)>,
}

/// Renders an `f64` as a JSON number (JSON has no NaN/inf literals, so
/// non-finite values are written as 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Appends one trace-event object; `args` is pre-rendered JSON
    /// (without braces), e.g. `"flits":5,"hops":3`.
    #[allow(clippy::too_many_arguments)]
    fn event(
        &mut self,
        name: &str,
        cat: &str,
        ph: char,
        ts: Cycle,
        pid: u32,
        tid: u64,
        args: &str,
    ) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            esc(name),
            esc(cat),
            ph,
            ts,
            pid,
            tid
        );
        if ph == 'i' {
            // Thread-scoped instant: renders as a tick on its track.
            self.out.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            let _ = write!(self.out, ",\"args\":{{{args}}}");
        }
        self.out.push('}');
    }

    /// Like [`event`](Self::event) but with a top-level `id` field (flow
    /// and async phases); `extra` is raw JSON appended after the id,
    /// e.g. `,"bp":"e"`.
    #[allow(clippy::too_many_arguments)]
    fn event_id(
        &mut self,
        name: &str,
        cat: &str,
        ph: char,
        ts: Cycle,
        pid: u32,
        tid: u64,
        id: u64,
        extra: &str,
    ) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{},\"id\":{}{}}}",
            esc(name),
            esc(cat),
            ph,
            ts,
            pid,
            tid,
            id,
            extra
        );
    }

    fn metadata(&mut self, name: &str, pid: u32, tid: u64, value: &str) {
        self.event(
            name,
            "__metadata",
            'M',
            0,
            pid,
            tid,
            &format!("\"name\":\"{}\"", esc(value)),
        );
    }

    fn finish(mut self, dropped: u64, total: u64) -> String {
        let _ = write!(
            self.out,
            "\n],\"otherData\":{{\"recorded\":{total},\"dropped\":{dropped}}}}}"
        );
        self.out
    }
}

/// Renders a recorder's contents as Chrome trace-event JSON.
pub fn to_chrome_json(rec: &RingRecorder) -> String {
    let events = rec.to_vec();
    chrome_json(&events, rec.dropped())
}

/// Renders `(cycle, event)` pairs (oldest first) as Chrome trace-event
/// JSON; `dropped` is reported in `otherData`.
pub fn chrome_json(events: &[(Cycle, TraceEvent)], dropped: u64) -> String {
    chrome_json_with_counters(events, dropped, &[])
}

/// As [`chrome_json`], additionally emitting the given counter tracks
/// under pid 3. With an empty `counters` slice the output is
/// byte-identical to [`chrome_json`] (asserted by the golden tests),
/// so existing traces never change shape.
pub fn chrome_json_with_counters(
    events: &[(Cycle, TraceEvent)],
    dropped: u64,
    counters: &[CounterTrack],
) -> String {
    chrome_json_full(events, dropped, counters, &[])
}

/// As [`chrome_json_with_counters`], additionally emitting the given
/// journey spans under pid 4 (duration slices per stage, one track per
/// journey, flow arrows from issue to completion). With an empty
/// `journeys` slice the output is byte-identical to
/// [`chrome_json_with_counters`] (asserted by the golden tests).
pub fn chrome_json_full(
    events: &[(Cycle, TraceEvent)],
    dropped: u64,
    counters: &[CounterTrack],
    journeys: &[JourneySpan],
) -> String {
    let mut w = Writer::new();

    // Name the processes and every track that will appear. Each
    // process_name / thread_name pair is emitted exactly once.
    w.metadata("process_name", PID_MEM, 0, "memory-system");
    w.metadata("process_name", PID_TB, 0, "thread-blocks");
    w.metadata("process_name", PID_KERNEL, 0, "kernels");
    if !counters.is_empty() {
        w.metadata("process_name", PID_COUNTER, 0, "counters");
        for (tid, track) in counters.iter().enumerate() {
            w.metadata("thread_name", PID_COUNTER, tid as u64, &track.name);
        }
    }
    if !journeys.is_empty() {
        w.metadata("process_name", PID_JOURNEY, 0, "journeys");
        for (tid, j) in journeys.iter().enumerate() {
            w.metadata("thread_name", PID_JOURNEY, tid as u64, &j.name);
        }
    }
    let mut nodes: BTreeSet<u64> = BTreeSet::new();
    let mut tbs: BTreeSet<u64> = BTreeSet::new();
    for (_, ev) in events {
        match ev {
            TraceEvent::TbLaunch { tb, cu } | TraceEvent::TbRetire { tb, cu } => {
                tbs.insert(tb.0 as u64);
                nodes.insert(cu.index() as u64);
            }
            TraceEvent::AtomicIssue { cu, .. } => {
                nodes.insert(cu.index() as u64);
            }
            TraceEvent::SyncAcquire { node, .. }
            | TraceEvent::SyncRelease { node, .. }
            | TraceEvent::StateChange { node, .. }
            | TraceEvent::Eviction { node, .. }
            | TraceEvent::SbFlushBegin { node, .. }
            | TraceEvent::SbFlushEnd { node }
            | TraceEvent::MshrAlloc { node, .. }
            | TraceEvent::MshrRetire { node, .. } => {
                nodes.insert(node.index() as u64);
            }
            TraceEvent::MsgSend { src, .. } | TraceEvent::MsgDeliver { src, .. } => {
                nodes.insert(src.index() as u64);
            }
            TraceEvent::KernelBegin { .. }
            | TraceEvent::KernelEnd { .. }
            | TraceEvent::CheckViolation { .. } => {}
        }
    }
    for &n in &nodes {
        let label = if n == 15 {
            "cpu".to_string()
        } else {
            format!("cu{n}")
        };
        w.metadata("thread_name", PID_MEM, n, &label);
    }
    for &t in &tbs {
        w.metadata("thread_name", PID_TB, t, &format!("tb{t}"));
    }
    w.metadata("thread_name", PID_KERNEL, 0, "launches");

    // Depth per (pid, tid) so duration ends whose begins were evicted
    // from the ring degrade to instants instead of corrupting nesting.
    let mut depth: HashMap<(u32, u64), u32> = HashMap::new();

    for &(ts, ev) in events {
        let cat = ev.category().label();
        let name = ev.name();
        match ev {
            TraceEvent::TbLaunch { tb, cu } => {
                *depth.entry((PID_TB, tb.0 as u64)).or_insert(0) += 1;
                w.event(
                    "resident",
                    cat,
                    'B',
                    ts,
                    PID_TB,
                    tb.0 as u64,
                    &format!("\"cu\":\"{cu}\""),
                );
            }
            TraceEvent::TbRetire { tb, cu } => {
                let d = depth.entry((PID_TB, tb.0 as u64)).or_insert(0);
                if *d > 0 {
                    *d -= 1;
                    w.event("resident", cat, 'E', ts, PID_TB, tb.0 as u64, "");
                } else {
                    w.event(
                        name,
                        cat,
                        'i',
                        ts,
                        PID_TB,
                        tb.0 as u64,
                        &format!("\"cu\":\"{cu}\""),
                    );
                }
            }
            TraceEvent::KernelBegin { index, tbs } => {
                *depth.entry((PID_KERNEL, 0)).or_insert(0) += 1;
                w.event(
                    &format!("kernel{index}"),
                    cat,
                    'B',
                    ts,
                    PID_KERNEL,
                    0,
                    &format!("\"tbs\":{tbs}"),
                );
            }
            TraceEvent::KernelEnd { index } => {
                let d = depth.entry((PID_KERNEL, 0)).or_insert(0);
                if *d > 0 {
                    *d -= 1;
                    w.event(&format!("kernel{index}"), cat, 'E', ts, PID_KERNEL, 0, "");
                } else {
                    w.event(name, cat, 'i', ts, PID_KERNEL, 0, "");
                }
            }
            TraceEvent::SbFlushBegin { node, reason, pending } => {
                let tid = node.index() as u64;
                *depth.entry((PID_MEM, tid)).or_insert(0) += 1;
                w.event(
                    "sb-drain",
                    cat,
                    'B',
                    ts,
                    PID_MEM,
                    tid,
                    &format!("\"reason\":\"{}\",\"pending\":{pending}", reason.label()),
                );
            }
            TraceEvent::SbFlushEnd { node } => {
                let tid = node.index() as u64;
                let d = depth.entry((PID_MEM, tid)).or_insert(0);
                if *d > 0 {
                    *d -= 1;
                    w.event("sb-drain", cat, 'E', ts, PID_MEM, tid, "");
                } else {
                    w.event(name, cat, 'i', ts, PID_MEM, tid, "");
                }
            }
            TraceEvent::SyncAcquire {
                node,
                scope,
                invalidated,
                flash,
            } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                node.index() as u64,
                &format!("\"scope\":\"{scope}\",\"invalidated\":{invalidated},\"flash\":{flash}"),
            ),
            TraceEvent::SyncRelease { node, scope } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                node.index() as u64,
                &format!("\"scope\":\"{scope}\""),
            ),
            TraceEvent::AtomicIssue {
                tb,
                cu,
                word,
                ord,
                scope,
            } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                cu.index() as u64,
                &format!(
                    "\"tb\":{},\"word\":{},\"ord\":\"{ord:?}\",\"scope\":\"{scope}\"",
                    tb.0, word.0
                ),
            ),
            TraceEvent::StateChange {
                node,
                level,
                line,
                words,
                from,
                to,
            } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                node.index() as u64,
                &format!(
                    "\"level\":\"{}\",\"line\":{},\"words\":{words},\"from\":\"{}\",\"to\":\"{}\"",
                    level.label(),
                    line.0,
                    from.label(),
                    to.label()
                ),
            ),
            TraceEvent::Eviction {
                node,
                level,
                line,
                owned_words,
            } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                node.index() as u64,
                &format!(
                    "\"level\":\"{}\",\"line\":{},\"owned_words\":{owned_words}",
                    level.label(),
                    line.0
                ),
            ),
            TraceEvent::MshrAlloc {
                node,
                line,
                outstanding,
            } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                node.index() as u64,
                &format!("\"line\":{},\"outstanding\":{outstanding}", line.0),
            ),
            TraceEvent::MshrRetire { node, line, waiters } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                node.index() as u64,
                &format!("\"line\":{},\"waiters\":{waiters}", line.0),
            ),
            TraceEvent::MsgSend {
                src,
                dst,
                class,
                flits,
                hops,
                arrival,
            } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                src.index() as u64,
                &format!(
                    "\"src\":\"{src}\",\"dst\":\"{dst}\",\"class\":\"{}\",\"flits\":{flits},\"hops\":{hops},\"arrival\":{arrival}",
                    class.label()
                ),
            ),
            TraceEvent::MsgDeliver { src, dst, class } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_MEM,
                dst.index() as u64,
                &format!("\"src\":\"{src}\",\"dst\":\"{dst}\",\"class\":\"{}\"", class.label()),
            ),
            TraceEvent::CheckViolation { kind } => w.event(
                name,
                cat,
                'i',
                ts,
                PID_KERNEL,
                0,
                &format!("\"kind\":\"{}\"", esc(kind)),
            ),
        }
    }

    for (tid, track) in counters.iter().enumerate() {
        for &(ts, value) in &track.points {
            w.event(
                &track.name,
                "counter",
                'C',
                ts,
                PID_COUNTER,
                tid as u64,
                &format!("\"value\":{}", json_num(value)),
            );
        }
    }

    for (tid, j) in journeys.iter().enumerate() {
        let tid = tid as u64;
        for (label, start, end) in &j.stages {
            w.event(label, "journey", 'B', *start, PID_JOURNEY, tid, "");
            w.event(label, "journey", 'E', *end, PID_JOURNEY, tid, "");
        }
        // A flow arrow from the first stage to the last, carrying the
        // request id, so issue and completion link up even when a UI
        // collapses the track.
        if let (Some(first), Some(last)) = (j.stages.first(), j.stages.last()) {
            w.event_id(
                "journey",
                "journey",
                's',
                first.1,
                PID_JOURNEY,
                tid,
                j.id,
                "",
            );
            w.event_id(
                "journey",
                "journey",
                'f',
                last.2,
                PID_JOURNEY,
                tid,
                j.id,
                ",\"bp\":\"e\"",
            );
        }
    }

    w.finish(dropped, events.len() as u64 + dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlushReason;
    use crate::sink::TraceSink;
    use gsim_types::{NodeId, TbId};

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("\n"), "\\u000a");
    }

    #[test]
    fn exports_balanced_durations() {
        let mut r = RingRecorder::new(64);
        r.record(
            5,
            &TraceEvent::TbLaunch {
                tb: TbId(3),
                cu: NodeId(1),
            },
        );
        r.record(
            9,
            &TraceEvent::SbFlushBegin {
                node: NodeId(1),
                reason: FlushReason::Release,
                pending: 4,
            },
        );
        r.record(20, &TraceEvent::SbFlushEnd { node: NodeId(1) });
        r.record(
            30,
            &TraceEvent::TbRetire {
                tb: TbId(3),
                cu: NodeId(1),
            },
        );
        let json = to_chrome_json(&r);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.contains("\"dropped\":0"));
        assert!(
            json.contains("\"name\":\"tb3\""),
            "thread named after the block"
        );
    }

    #[test]
    fn empty_counters_are_byte_identical() {
        let events = [(
            3,
            TraceEvent::TbLaunch {
                tb: TbId(0),
                cu: NodeId(2),
            },
        )];
        assert_eq!(
            chrome_json(&events, 0),
            chrome_json_with_counters(&events, 0, &[]),
        );
    }

    #[test]
    fn empty_journeys_are_byte_identical() {
        let events = [(
            3,
            TraceEvent::TbLaunch {
                tb: TbId(0),
                cu: NodeId(2),
            },
        )];
        let mut ipc = CounterTrack::new("ipc");
        ipc.push(8, 1.5);
        let counters = [ipc];
        assert_eq!(
            chrome_json_with_counters(&events, 2, &counters),
            chrome_json_full(&events, 2, &counters, &[]),
        );
    }

    #[test]
    fn journey_spans_export_golden_json() {
        let j = JourneySpan {
            id: 65,
            name: "load req 65 cu3".into(),
            stages: vec![
                ("l1-issue".into(), 100, 102),
                ("req-transit".into(), 102, 110),
            ],
        };
        let json = chrome_json_full(&[], 0, &[], &[j]);
        let expected = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"memory-system\"}},\n",
            "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"name\":\"thread-blocks\"}},\n",
            "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":2,\"tid\":0,\"args\":{\"name\":\"kernels\"}},\n",
            "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":4,\"tid\":0,\"args\":{\"name\":\"journeys\"}},\n",
            "{\"name\":\"thread_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":4,\"tid\":0,\"args\":{\"name\":\"load req 65 cu3\"}},\n",
            "{\"name\":\"thread_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,\"pid\":2,\"tid\":0,\"args\":{\"name\":\"launches\"}},\n",
            "{\"name\":\"l1-issue\",\"cat\":\"journey\",\"ph\":\"B\",\"ts\":100,\"pid\":4,\"tid\":0},\n",
            "{\"name\":\"l1-issue\",\"cat\":\"journey\",\"ph\":\"E\",\"ts\":102,\"pid\":4,\"tid\":0},\n",
            "{\"name\":\"req-transit\",\"cat\":\"journey\",\"ph\":\"B\",\"ts\":102,\"pid\":4,\"tid\":0},\n",
            "{\"name\":\"req-transit\",\"cat\":\"journey\",\"ph\":\"E\",\"ts\":110,\"pid\":4,\"tid\":0},\n",
            "{\"name\":\"journey\",\"cat\":\"journey\",\"ph\":\"s\",\"ts\":100,\"pid\":4,\"tid\":0,\"id\":65},\n",
            "{\"name\":\"journey\",\"cat\":\"journey\",\"ph\":\"f\",\"ts\":110,\"pid\":4,\"tid\":0,\"id\":65,\"bp\":\"e\"}\n",
            "],\"otherData\":{\"recorded\":0,\"dropped\":0}}",
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn counter_tracks_emit_counter_events_and_metadata_once() {
        let mut ipc = CounterTrack::new("ipc");
        ipc.push(0, 0.5);
        ipc.push(1024, 1.25);
        let mut hits = CounterTrack::new("l1-hit-rate");
        hits.push(1024, 0.875);
        let json = chrome_json_with_counters(&[], 0, &[ipc, hits]);
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 3);
        assert_eq!(json.matches("\"name\":\"counters\"").count(), 1);
        assert_eq!(
            json.matches("\"name\":\"ipc\"").count(),
            3,
            "meta + 2 samples"
        );
        assert!(json.contains("\"args\":{\"value\":1.25}"));
        assert!(
            json.contains("\"pid\":3,\"tid\":1"),
            "second track on tid 1"
        );
    }

    #[test]
    fn non_finite_counter_values_stay_valid_json() {
        let mut t = CounterTrack::new("bad");
        t.push(0, f64::NAN);
        t.push(1, f64::INFINITY);
        let json = chrome_json_with_counters(&[], 0, &[t]);
        assert!(!json.contains("NaN"));
        assert!(!json.contains("inf"));
        assert_eq!(json.matches("\"value\":0").count(), 2);
    }

    #[test]
    fn orphan_end_degrades_to_instant() {
        // A ring so small the Begin fell off before export.
        let mut r = RingRecorder::new(1);
        r.record(
            9,
            &TraceEvent::SbFlushBegin {
                node: NodeId(0),
                reason: FlushReason::Overflow,
                pending: 1,
            },
        );
        r.record(20, &TraceEvent::SbFlushEnd { node: NodeId(0) });
        let json = to_chrome_json(&r);
        assert!(!json.contains("\"ph\":\"E\""), "no unmatched end");
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"dropped\":1"));
    }
}
