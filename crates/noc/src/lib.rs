#![warn(missing_docs)]

//! On-chip network model: a 4x4 mesh with XY dimension-order routing,
//! per-link serialization, and per-class flit-crossing accounting.
//!
//! This is the Garnet substitute of the `gpu-denovo` simulator (paper
//! §5.2). Each of the 16 mesh nodes hosts a GPU CU or the CPU core plus
//! one bank of the shared L2 (paper Figure 1). Messages are wormhole-style
//! multi-flit packets; each directed link carries one flit per cycle, so a
//! message of `f` flits occupies each link on its path for `f` cycles and
//! contends with other traffic ([`Mesh::send`] models this with per-link
//! next-free times).
//!
//! The network-traffic metric of the paper's figures — flit crossings by
//! message class — is accumulated in [`Mesh::traffic`].
//!
//! # Examples
//!
//! ```
//! use gsim_noc::{Mesh, MeshConfig};
//! use gsim_types::{Msg, MsgKind, Component, NodeId, LineAddr, WordMask};
//!
//! let mut mesh = Mesh::new(MeshConfig::default());
//! let msg = Msg {
//!     src: NodeId(0), dst: NodeId(15), dst_comp: Component::L2,
//!     kind: MsgKind::ReadReq {
//!         line: LineAddr(0), mask: WordMask::full(), requester: NodeId(0),
//!     },
//! };
//! let arrival = mesh.send(100, &msg);
//! assert!(arrival > 100);
//! assert_eq!(mesh.traffic().total(), 6); // 1 flit x 6 hops (corner to corner)
//! ```

use gsim_flow::FlowHandle;
use gsim_trace::{TraceEvent, TraceHandle};
use gsim_types::{Cycle, InlineVec, Msg, NodeId, TrafficBreakdown};

/// Mesh geometry and timing parameters.
///
/// Defaults model the paper's 4x4 mesh with timing calibrated so the
/// end-to-end latencies land in Table 3's ranges (L2 hits 29-61 cycles
/// round trip, remote L1 hits 35-83 cycles — asserted by tests in
/// `gsim-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh columns.
    pub cols: u8,
    /// Mesh rows.
    pub rows: u8,
    /// Cycles for a flit to traverse one link (wire + downstream router).
    pub hop_latency: Cycle,
    /// Cycles spent in the injecting router before the first link.
    pub router_latency: Cycle,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            cols: 4,
            rows: 4,
            hop_latency: 2,
            router_latency: 1,
        }
    }
}

impl MeshConfig {
    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// (x, y) coordinates of a node (row-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on this mesh.
    pub fn coords(&self, node: NodeId) -> (u8, u8) {
        assert!(
            (node.0 as usize) < self.nodes(),
            "node {node} not on a {}x{} mesh",
            self.cols,
            self.rows
        );
        (node.0 % self.cols, node.0 / self.cols)
    }

    /// Manhattan (hop) distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// The cheapest single link crossing: the cycles one flit spends
    /// traversing one link (wire plus downstream router). Every
    /// non-local message pays at least this once; it is the per-link
    /// floor under every figure the latency accessors below build on.
    pub fn min_link_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// Uncontended arrival delta of a `flits`-flit message from `src` to
    /// `dst`: exactly what [`Mesh::send`] returns on an idle mesh, as a
    /// latency rather than an absolute cycle. The single source of truth
    /// for engine-side latency reasoning (lookahead derivation, epoch
    /// sizing) — scheduling code must derive bounds from this rather
    /// than hardcoding mesh constants.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, flits: u32) -> Cycle {
        let hops = self.hops(src, dst) as Cycle;
        let tail = if hops > 0 { flits as Cycle - 1 } else { 0 };
        self.router_latency + hops * self.hop_latency + tail
    }

    /// The minimum uncontended latency of any message between two
    /// *distinct* nodes: a single-flit message over one link. This is
    /// the conservative-lookahead bound for partitioned simulation — a
    /// message generated at cycle `t` whose destination is another node
    /// can never arrive before `t + min_remote_latency()`, and link
    /// contention only pushes arrivals later.
    pub fn min_remote_latency(&self) -> Cycle {
        self.router_latency + self.min_link_latency()
    }

    /// The minimum uncontended latency of a message that stays on its
    /// own node (crosses no links): just the injecting router. This is
    /// the floor for *every* message, so any delivery scheduled by a
    /// send at cycle `t` lands strictly after `t` — the property that
    /// makes one-cycle epochs safe to run without intra-epoch exchange.
    pub fn min_local_latency(&self) -> Cycle {
        self.router_latency
    }

    /// The XY dimension-order route from `src` to `dst`, as the sequence
    /// of nodes visited (excluding `src`, including `dst`). Empty when
    /// `src == dst`.
    ///
    /// Inline up to 8 hops — every route of the paper's 4x4 mesh (max
    /// Manhattan distance 6), so routing a message allocates nothing;
    /// larger meshes spill transparently.
    pub fn route(&self, src: NodeId, dst: NodeId) -> InlineVec<NodeId, 8> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = InlineVec::new();
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(NodeId(y * self.cols + x));
        }
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(NodeId(y * self.cols + x));
        }
        path
    }
}

/// A directed link between adjacent mesh nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Link {
    from: NodeId,
    to: NodeId,
}

/// The mesh interconnect: routing, contention, and traffic accounting.
///
/// Single-threaded and deterministic: message latency depends only on the
/// injection time and previously sent messages.
#[derive(Debug)]
pub struct Mesh {
    config: MeshConfig,
    /// Next cycle at which each directed link is free, indexed by
    /// `from * nodes + to`.
    link_free: Vec<Cycle>,
    traffic: TrafficBreakdown,
    messages: u64,
    trace: TraceHandle,
    flow: FlowHandle,
}

impl Mesh {
    /// Creates a mesh with the given configuration.
    pub fn new(config: MeshConfig) -> Self {
        let n = config.nodes();
        Mesh {
            config,
            link_free: vec![0; n * n],
            traffic: TrafficBreakdown::default(),
            messages: 0,
            trace: TraceHandle::disabled(),
            flow: FlowHandle::disabled(),
        }
    }

    /// Installs a trace handle; every subsequent [`send`](Self::send)
    /// emits a `noc` event with flit, hop, and arrival-time detail.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.share();
    }

    /// Installs a flow handle; every subsequent [`send`](Self::send)
    /// reports each link crossing (flits, queueing, transit, by class)
    /// and the whole message's injection/arrival to the collector.
    pub fn set_flow(&mut self, flow: &FlowHandle) {
        self.flow = flow.share();
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Accumulated flit-crossing traffic by class.
    pub fn traffic(&self) -> &TrafficBreakdown {
        &self.traffic
    }

    /// Total messages injected.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Total flit-hop crossings, all classes (shorthand for
    /// `traffic().total()`; the engine samples this every profiling
    /// interval).
    pub fn flit_hops(&self) -> u64 {
        self.traffic.total()
    }

    /// Number of links still occupied past `now`. A message's tail flit
    /// clears its last link no later than the message's delivery, so
    /// once the event queue has drained this must be zero — a non-zero
    /// count at end of run is leaked in-flight traffic, and the quiesce
    /// audit reports it.
    pub fn links_busy_after(&self, now: Cycle) -> usize {
        self.link_free.iter().filter(|&&t| t > now).count()
    }

    fn link_index(&self, link: Link) -> usize {
        link.from.index() * self.config.nodes() + link.to.index()
    }

    /// Injects `msg` at cycle `now` and returns its arrival cycle at the
    /// destination node, modelling per-link serialization: a link is busy
    /// for `flits` cycles per message crossing it.
    ///
    /// Traffic accounting: `flits x hops` crossings are charged to the
    /// message's class. A message to the local node (`src == dst`) crosses
    /// no links, costs only the router latency, and adds no traffic —
    /// this is how locally scoped synchronization and same-node L2 bank
    /// accesses avoid network overhead.
    pub fn send(&mut self, now: Cycle, msg: &Msg) -> Cycle {
        self.messages += 1;
        let flits = msg.flits();
        let path = self.config.route(msg.src, msg.dst);
        let hops = path.len() as u32;
        self.traffic.record(msg.class(), flits, hops);

        // Head-flit timing with per-link serialization; the message has
        // fully arrived `flits - 1` cycles after the head.
        let mut t = now + self.config.router_latency;
        let mut from = msg.src;
        let mut queued: Cycle = 0;
        for &to in &path {
            let li = self.link_index(Link { from, to });
            let ready = t;
            t = t.max(self.link_free[li]);
            let wait = t - ready;
            queued += wait;
            self.link_free[li] = t + flits as Cycle;
            self.flow
                .link_crossing(from, to, msg.class(), flits, wait, self.config.hop_latency);
            t += self.config.hop_latency;
            from = to;
        }
        if hops > 0 {
            t += flits as Cycle - 1; // tail serialization at destination
        }
        self.flow.msg_sent(msg, now, t, queued);
        self.trace.emit(|| TraceEvent::MsgSend {
            src: msg.src,
            dst: msg.dst,
            class: msg.class(),
            flits,
            hops,
            arrival: t,
        });
        t
    }

    /// Resets contention state and traffic counters (for reuse between
    /// independent simulations).
    pub fn reset(&mut self) {
        self.link_free.fill(0);
        self.traffic = TrafficBreakdown::default();
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_types::{Component, LineAddr, MsgClass, MsgKind, WordMask, WORDS_PER_LINE};

    fn ctrl(src: u8, dst: u8) -> Msg {
        Msg {
            src: NodeId(src),
            dst: NodeId(dst),
            dst_comp: Component::L2,
            kind: MsgKind::ReadReq {
                line: LineAddr(0),
                mask: WordMask::full(),
                requester: NodeId(src),
            },
        }
    }

    fn data(src: u8, dst: u8, words: usize) -> Msg {
        Msg {
            src: NodeId(src),
            dst: NodeId(dst),
            dst_comp: Component::L1,
            kind: MsgKind::ReadResp {
                line: LineAddr(0),
                mask: (0..words).collect(),
                data: [0; WORDS_PER_LINE],
            },
        }
    }

    #[test]
    fn coords_and_hops() {
        let c = MeshConfig::default();
        assert_eq!(c.coords(NodeId(0)), (0, 0));
        assert_eq!(c.coords(NodeId(3)), (3, 0));
        assert_eq!(c.coords(NodeId(15)), (3, 3));
        assert_eq!(c.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(c.hops(NodeId(5), NodeId(5)), 0);
        assert_eq!(c.hops(NodeId(4), NodeId(7)), 3);
    }

    #[test]
    fn xy_route_shape() {
        let c = MeshConfig::default();
        // X first, then Y: 0 -> 15 goes 1, 2, 3, 7, 11, 15.
        let path: Vec<u8> = c.route(NodeId(0), NodeId(15)).iter().map(|n| n.0).collect();
        assert_eq!(path, vec![1, 2, 3, 7, 11, 15]);
        assert!(c.route(NodeId(6), NodeId(6)).is_empty());
        // Reverse direction.
        let back: Vec<u8> = c.route(NodeId(15), NodeId(0)).iter().map(|n| n.0).collect();
        assert_eq!(back, vec![14, 13, 12, 8, 4, 0]);
    }

    #[test]
    fn local_delivery_is_free() {
        let mut m = Mesh::new(MeshConfig::default());
        let arr = m.send(10, &ctrl(5, 5));
        assert_eq!(arr, 10 + m.config().router_latency);
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.messages_sent(), 1);
    }

    #[test]
    fn latency_scales_with_distance() {
        let mut m = Mesh::new(MeshConfig::default());
        let near = m.send(0, &ctrl(0, 1));
        m.reset(); // independent measurements
        let far = m.send(0, &ctrl(0, 15));
        assert!(far > near);
        let cfg = MeshConfig::default();
        assert_eq!(near, cfg.router_latency + cfg.hop_latency);
        assert_eq!(far, cfg.router_latency + 6 * cfg.hop_latency);
    }

    #[test]
    fn flit_crossings_accounting() {
        let mut m = Mesh::new(MeshConfig::default());
        m.send(0, &data(0, 15, WORDS_PER_LINE)); // 5 flits x 6 hops
        assert_eq!(m.traffic().class(MsgClass::Read), 30);
        m.send(0, &data(0, 1, 1)); // 2 flits x 1 hop
        assert_eq!(m.traffic().class(MsgClass::Read), 32);
    }

    #[test]
    fn link_contention_serializes() {
        let mut m = Mesh::new(MeshConfig::default());
        // Two 5-flit messages over the same first link at the same time:
        // the second is delayed by the first's serialization.
        let a = m.send(0, &data(0, 1, WORDS_PER_LINE));
        let b = m.send(0, &data(0, 1, WORDS_PER_LINE));
        assert!(b >= a + 5, "second message must wait: a={a} b={b}");
        // A message on a disjoint path is unaffected.
        let mut m2 = Mesh::new(MeshConfig::default());
        let c0 = m2.send(0, &data(15, 14, WORDS_PER_LINE));
        m2.reset();
        m2.send(0, &data(0, 1, WORDS_PER_LINE));
        let c1 = m2.send(0, &data(15, 14, WORDS_PER_LINE));
        assert_eq!(c0, c1);
    }

    #[test]
    fn tail_serialization_charged_once() {
        let m_cfg = MeshConfig::default();
        let mut m = Mesh::new(m_cfg);
        // 5-flit message over 2 hops: router + 2*hop + (5-1) tail.
        let arr = m.send(0, &data(0, 2, WORDS_PER_LINE));
        assert_eq!(arr, m_cfg.router_latency + 2 * m_cfg.hop_latency + 4);
    }

    #[test]
    fn latency_accessors_match_send_on_an_idle_mesh() {
        let cfg = MeshConfig::default();
        // base_latency is definitionally what send() returns uncontended:
        // verify over every (src, dst) pair for a control and a full-line
        // message.
        for a in 0u8..16 {
            for b in 0u8..16 {
                let mut m = Mesh::new(cfg);
                let msg = ctrl(a, b);
                let arr = m.send(1000, &msg);
                assert_eq!(
                    arr,
                    1000 + cfg.base_latency(NodeId(a), NodeId(b), msg.flits()),
                    "ctrl {a}->{b}"
                );
                let mut m = Mesh::new(cfg);
                let msg = data(a, b, WORDS_PER_LINE);
                let arr = m.send(1000, &msg);
                assert_eq!(
                    arr,
                    1000 + cfg.base_latency(NodeId(a), NodeId(b), msg.flits()),
                    "data {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn min_latencies_are_tight_floors() {
        let cfg = MeshConfig::default();
        assert_eq!(cfg.min_link_latency(), cfg.hop_latency);
        assert_eq!(cfg.min_local_latency(), cfg.router_latency);
        assert_eq!(
            cfg.min_remote_latency(),
            cfg.router_latency + cfg.hop_latency
        );
        // Tight: an adjacent-node single-flit message achieves the remote
        // floor, a same-node message the local floor.
        let mut m = Mesh::new(cfg);
        assert_eq!(m.send(0, &ctrl(0, 1)), cfg.min_remote_latency());
        assert_eq!(m.send(50, &ctrl(9, 9)), 50 + cfg.min_local_latency());
        // Floors: no (src, dst, flits) combination beats them, and
        // distinct nodes never beat the remote floor.
        for a in 0u8..16 {
            for b in 0u8..16 {
                for msg in [ctrl(a, b), data(a, b, 3)] {
                    let base = cfg.base_latency(NodeId(a), NodeId(b), msg.flits());
                    assert!(base >= cfg.min_local_latency());
                    if a != b {
                        assert!(base >= cfg.min_remote_latency(), "{a}->{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn corner_routes_are_golden() {
        let c = MeshConfig::default();
        // The other corner pair, both directions: X fully, then Y.
        let down: Vec<u8> = c.route(NodeId(3), NodeId(12)).iter().map(|n| n.0).collect();
        assert_eq!(down, vec![2, 1, 0, 4, 8, 12]);
        let up: Vec<u8> = c.route(NodeId(12), NodeId(3)).iter().map(|n| n.0).collect();
        assert_eq!(up, vec![13, 14, 15, 11, 7, 3]);
        // Pure-row and pure-column routes have no turn.
        let row: Vec<u8> = c.route(NodeId(4), NodeId(7)).iter().map(|n| n.0).collect();
        assert_eq!(row, vec![5, 6, 7]);
        let col: Vec<u8> = c.route(NodeId(1), NodeId(13)).iter().map(|n| n.0).collect();
        assert_eq!(col, vec![5, 9, 13]);
    }

    #[test]
    fn same_node_send_touches_no_link() {
        let mut m = Mesh::new(MeshConfig::default());
        for _ in 0..3 {
            m.send(0, &data(9, 9, WORDS_PER_LINE));
        }
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.flit_hops(), 0);
        assert_eq!(m.links_busy_after(0), 0, "no link was ever reserved");
        assert_eq!(m.messages_sent(), 3);
    }

    #[test]
    fn simultaneous_arrivals_queue_in_injection_order() {
        let mut m = Mesh::new(MeshConfig::default());
        let cfg = MeshConfig::default();
        // Two 5-flit messages hit link 0->1 on the same cycle: the
        // first injected crosses first; the second waits out the full
        // 5-flit serialization. Golden arrivals.
        let a = m.send(0, &data(0, 1, WORDS_PER_LINE));
        let b = m.send(0, &data(0, 1, WORDS_PER_LINE));
        assert_eq!(a, cfg.router_latency + cfg.hop_latency + 4);
        assert_eq!(b, cfg.router_latency + 5 + cfg.hop_latency + 4);
        // A third message injected later but before the link frees
        // queues behind both.
        let c = m.send(2, &data(0, 1, WORDS_PER_LINE));
        assert_eq!(c, cfg.router_latency + 10 + cfg.hop_latency + 4);
    }

    #[test]
    fn flit_hops_equals_traffic_total() {
        // The two aggregate views of mesh traffic must never drift:
        // `flit_hops()` is what interval samplers read, `traffic()` is
        // what `SimStats` reports.
        let mut m = Mesh::new(MeshConfig::default());
        m.send(0, &data(0, 15, WORDS_PER_LINE));
        m.send(3, &ctrl(5, 5));
        m.send(7, &data(12, 3, 2));
        assert_eq!(m.flit_hops(), m.traffic().total());
        assert!(m.flit_hops() > 0);
    }

    #[test]
    fn flow_attribution_reconciles_with_aggregate_traffic() {
        use gsim_flow::{FlowHandle, FlowSpec};
        let h = FlowHandle::new(FlowSpec::on(), MeshConfig::default().nodes(), 26);
        let mut m = Mesh::new(MeshConfig::default());
        m.set_flow(&h);
        m.send(0, &data(0, 15, WORDS_PER_LINE));
        m.send(0, &data(0, 15, WORDS_PER_LINE)); // queues behind the first
        m.send(1, &ctrl(3, 12));
        m.send(5, &ctrl(9, 9)); // local: no link crossing
        let r = h.take_report(100).unwrap();
        r.reconcile(m.traffic()).expect("per-link sums match");
        assert_eq!(r.total_flits(), m.traffic().total());
        // The second 5-flit message waited on every one of the 6 links.
        let queued: u64 = r.links.iter().map(|l| l.queue_cycles).sum();
        assert!(queued > 0, "contention was observed");
        // Timing is untouched by observation: an identical unobserved
        // mesh produces identical link-free state and arrivals.
        let mut plain = Mesh::new(MeshConfig::default());
        plain.send(0, &data(0, 15, WORDS_PER_LINE));
        plain.send(0, &data(0, 15, WORDS_PER_LINE));
        let observed_arrival = m.send(20, &ctrl(0, 15));
        let plain_arrival = plain.send(20, &ctrl(0, 15));
        assert_eq!(observed_arrival, plain_arrival);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = Mesh::new(MeshConfig::default());
        m.send(0, &data(0, 15, 4));
        m.reset();
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.messages_sent(), 0);
        let a = m.send(0, &ctrl(0, 1));
        assert_eq!(
            a,
            MeshConfig::default().router_latency + MeshConfig::default().hop_latency
        );
    }

    #[test]
    #[should_panic(expected = "not on a")]
    fn off_mesh_node_panics() {
        let c = MeshConfig::default();
        let _ = c.coords(NodeId(16));
    }

    mod properties {
        use super::*;
        use gsim_types::Rng64;

        /// Exhaustive over all 256 (src, dst) pairs: route length matches
        /// the Manhattan distance and every step is one hop.
        #[test]
        fn routes_are_shortest_and_adjacent() {
            let c = MeshConfig::default();
            for a in 0u8..16 {
                for b in 0u8..16 {
                    let route = c.route(NodeId(a), NodeId(b));
                    assert_eq!(route.len() as u32, c.hops(NodeId(a), NodeId(b)));
                    let mut prev = NodeId(a);
                    for n in route {
                        assert_eq!(c.hops(prev, n), 1, "{a}->{b} via {n}");
                        prev = n;
                    }
                    if a != b {
                        assert_eq!(prev, NodeId(b));
                    }
                }
            }
        }

        #[test]
        fn arrival_never_before_injection() {
            let mut rng = Rng64::seed_from_u64(0x90c1);
            for _ in 0..256 {
                let (a, b) = (rng.gen_u32(0, 16) as u8, rng.gen_u32(0, 16) as u8);
                let now = rng.gen_u64(0, 100_000);
                let mut m = Mesh::new(MeshConfig::default());
                let arr = m.send(now, &ctrl(a, b));
                assert!(arr >= now + MeshConfig::default().router_latency);
            }
        }

        #[test]
        fn traffic_is_flits_times_hops() {
            let mut rng = Rng64::seed_from_u64(0x90c2);
            for _ in 0..256 {
                let (a, b) = (rng.gen_u32(0, 16) as u8, rng.gen_u32(0, 16) as u8);
                let words = rng.gen_usize(1, 17);
                let mut m = Mesh::new(MeshConfig::default());
                let msg = data(a, b, words);
                m.send(0, &msg);
                let want =
                    msg.flits() as u64 * MeshConfig::default().hops(NodeId(a), NodeId(b)) as u64;
                assert_eq!(m.traffic().total(), want);
            }
        }

        #[test]
        fn send_emits_noc_trace_events() {
            use gsim_trace::{RingRecorder, TraceEvent, TraceHandle};
            let h = TraceHandle::new(RingRecorder::new(16));
            let mut m = Mesh::new(MeshConfig::default());
            m.set_trace(&h);
            h.set_now(7);
            let arr = m.send(7, &ctrl(0, 15));
            let got = h.recorder().unwrap().borrow().to_vec();
            assert_eq!(got.len(), 1);
            match got[0] {
                (
                    7,
                    TraceEvent::MsgSend {
                        src,
                        dst,
                        flits,
                        hops,
                        arrival,
                        ..
                    },
                ) => {
                    assert_eq!((src, dst), (NodeId(0), NodeId(15)));
                    assert_eq!((flits, hops), (1, 6));
                    assert_eq!(arrival, arr);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
}
