#![warn(missing_docs)]

//! On-chip/inter-device network model: one or more 2D meshes with XY
//! dimension-order routing, joined into a fabric by inter-device links,
//! with per-link serialization and per-class flit-crossing accounting.
//!
//! This is the Garnet substitute of the `gpu-denovo` simulator (paper
//! §5.2). Each mesh node hosts a GPU CU or the CPU core plus one bank of
//! the shared L2 (paper Figure 1; 4x4 by default). Messages are
//! wormhole-style multi-flit packets; each directed link carries one flit
//! per `cycles_per_flit` cycles, so a message of `f` flits occupies a
//! link for `f x cpf` cycles and contends with other traffic
//! ([`Mesh::send`] models this with per-link next-free times).
//!
//! A [`Topology`] composes `devices` identical meshes: node ids are
//! global (`device * mesh.nodes() + local`), each device's local node 0
//! is its gateway, and gateways are fully connected by inter-device
//! links with their own latency/bandwidth class ([`XLinkConfig`]).
//! Routing is hierarchical: XY within the source mesh to its gateway,
//! one gateway-to-gateway crossing, then XY within the destination mesh
//! — so a single-device topology routes exactly as the original mesh.
//!
//! The network-traffic metric of the paper's figures — flit crossings by
//! message class — is accumulated in [`Mesh::traffic`].
//!
//! # Examples
//!
//! ```
//! use gsim_noc::{Mesh, MeshConfig};
//! use gsim_types::{Msg, MsgKind, Component, NodeId, LineAddr, WordMask};
//!
//! let mut mesh = Mesh::new(MeshConfig::default());
//! let msg = Msg {
//!     src: NodeId(0), dst: NodeId(15), dst_comp: Component::L2,
//!     kind: MsgKind::ReadReq {
//!         line: LineAddr(0), mask: WordMask::full(), requester: NodeId(0),
//!     },
//! };
//! let arrival = mesh.send(100, &msg);
//! assert!(arrival > 100);
//! assert_eq!(mesh.traffic().total(), 6); // 1 flit x 6 hops (corner to corner)
//! ```
//!
//! Two devices, with the cross-device link paid once:
//!
//! ```
//! use gsim_noc::{Mesh, MeshConfig, Topology, XLinkConfig};
//! use gsim_types::NodeId;
//!
//! let t = Topology::fabric(MeshConfig::default(), 2, XLinkConfig::default());
//! assert_eq!(t.nodes(), 32);
//! assert_eq!(t.device_of(NodeId(20)), 1);
//! // 5 -> 20 routes through both gateways: 5..0 on device 0, the
//! // inter-device link 0 -> 16, then 16..20 on device 1.
//! let route = t.route(NodeId(5), NodeId(20));
//! assert_eq!(route.last().copied(), Some(NodeId(20)));
//! assert!(route.contains(&t.gateway(0)) || NodeId(5) == t.gateway(0));
//! assert!(route.contains(&t.gateway(1)));
//! ```

use gsim_flow::FlowHandle;
use gsim_trace::{TraceEvent, TraceHandle};
use gsim_types::{Cycle, InlineVec, Msg, NodeId, TrafficBreakdown};

/// A route through the fabric: the nodes visited after the source,
/// ending at the destination.
///
/// Inline up to 16 hops — enough for every route of the default fabrics
/// (a 4x4 mesh's longest route is 6 hops; two 4x4 devices joined by a
/// gateway link peak at 13). Longer routes (big meshes, deep fabrics)
/// spill transparently to the heap; [`Topology::max_route_len`] is the
/// exact per-topology bound, and routing stays correct either way.
pub type Route = InlineVec<NodeId, 16>;

/// Mesh geometry and timing parameters.
///
/// Defaults model the paper's 4x4 mesh with timing calibrated so the
/// end-to-end latencies land in Table 3's ranges (L2 hits 29-61 cycles
/// round trip, remote L1 hits 35-83 cycles — asserted by tests in
/// `gsim-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh columns.
    pub cols: u8,
    /// Mesh rows.
    pub rows: u8,
    /// Cycles for a flit to traverse one link (wire + downstream router).
    pub hop_latency: Cycle,
    /// Cycles spent in the injecting router before the first link.
    pub router_latency: Cycle,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            cols: 4,
            rows: 4,
            hop_latency: 2,
            router_latency: 1,
        }
    }
}

impl MeshConfig {
    /// A non-default geometry with the default timing.
    pub fn grid(cols: u8, rows: u8) -> Self {
        MeshConfig {
            cols,
            rows,
            ..MeshConfig::default()
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// (x, y) coordinates of a node (row-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on this mesh.
    pub fn coords(&self, node: NodeId) -> (u8, u8) {
        assert!(
            (node.0 as usize) < self.nodes(),
            "node {node} not on a {}x{} mesh",
            self.cols,
            self.rows
        );
        (node.0 % self.cols, node.0 / self.cols)
    }

    /// The node at (x, y) — the inverse of [`coords`](Self::coords).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are off the mesh.
    pub fn node_at(&self, x: u8, y: u8) -> NodeId {
        assert!(x < self.cols && y < self.rows, "({x}, {y}) off the mesh");
        NodeId(y * self.cols + x)
    }

    /// Manhattan (hop) distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// The longest route on this mesh, in hops (corner to corner).
    pub fn max_route_len(&self) -> usize {
        (self.cols as usize - 1) + (self.rows as usize - 1)
    }

    /// The cheapest single link crossing: the cycles one flit spends
    /// traversing one link (wire plus downstream router). Every
    /// non-local message pays at least this once; it is the per-link
    /// floor under every figure the latency accessors below build on.
    pub fn min_link_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// Uncontended arrival delta of a `flits`-flit message from `src` to
    /// `dst`: exactly what [`Mesh::send`] returns on an idle
    /// single-device mesh, as a latency rather than an absolute cycle.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, flits: u32) -> Cycle {
        let hops = self.hops(src, dst) as Cycle;
        let tail = if hops > 0 { flits as Cycle - 1 } else { 0 };
        self.router_latency + hops * self.hop_latency + tail
    }

    /// The minimum uncontended latency of any message between two
    /// *distinct* nodes: a single-flit message over one link. This is
    /// the conservative-lookahead bound for partitioned simulation — a
    /// message generated at cycle `t` whose destination is another node
    /// can never arrive before `t + min_remote_latency()`, and link
    /// contention only pushes arrivals later.
    pub fn min_remote_latency(&self) -> Cycle {
        self.router_latency + self.min_link_latency()
    }

    /// The minimum uncontended latency of a message that stays on its
    /// own node (crosses no links): just the injecting router. This is
    /// the floor for *every* message, so any delivery scheduled by a
    /// send at cycle `t` lands strictly after `t` — the property that
    /// makes one-cycle epochs safe to run without intra-epoch exchange.
    pub fn min_local_latency(&self) -> Cycle {
        self.router_latency
    }

    /// The XY dimension-order route from `src` to `dst`, as the sequence
    /// of nodes visited (excluding `src`, including `dst`). Empty when
    /// `src == dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        let mut path = Route::new();
        self.route_into(src, dst, 0, &mut path);
        path
    }

    /// Appends the XY route `src -> dst` to `path`, with every node id
    /// offset by `base` (how a fabric route embeds a device's mesh).
    fn route_into(&self, src: NodeId, dst: NodeId, base: usize, path: &mut Route) {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        while x != dx {
            x = if dx > x { x + 1 } else { x - 1 };
            path.push(NodeId((base + (y * self.cols + x) as usize) as u8));
        }
        while y != dy {
            y = if dy > y { y + 1 } else { y - 1 };
            path.push(NodeId((base + (y * self.cols + x) as usize) as u8));
        }
    }
}

/// Timing of one inter-device (gateway-to-gateway) link.
///
/// Modelled on PCIe/NVLink-class interconnects relative to the on-chip
/// mesh: an order of magnitude more latency and a fraction of the
/// per-flit bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XLinkConfig {
    /// Cycles for a flit to traverse the inter-device link.
    pub latency: Cycle,
    /// Cycles of link occupancy per flit (the mesh's links carry one
    /// flit per cycle; inter-device links are narrower). Values below 1
    /// are treated as 1.
    pub cycles_per_flit: Cycle,
}

impl Default for XLinkConfig {
    fn default() -> Self {
        XLinkConfig {
            latency: 40,
            cycles_per_flit: 4,
        }
    }
}

impl XLinkConfig {
    /// The occupancy multiplier, floored at one cycle per flit.
    fn cpf(&self) -> Cycle {
        self.cycles_per_flit.max(1)
    }
}

/// A fabric of `devices` identical meshes joined by inter-device links.
///
/// Node ids are global: device `d`'s local node `l` is
/// `d * mesh.nodes() + l`. Each device's local node 0 is its *gateway*;
/// gateways are fully connected by [`XLinkConfig`]-class links, and a
/// cross-device route is `src ->(XY) gateway(src dev) ->(xlink)
/// gateway(dst dev) ->(XY) dst`. A `devices == 1` topology is exactly
/// the original single mesh: same routes, same latencies, same link
/// arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Per-device mesh geometry and on-chip timing.
    pub mesh: MeshConfig,
    /// Number of devices (>= 1).
    pub devices: u8,
    /// Inter-device link class (unused when `devices == 1`).
    pub xlink: XLinkConfig,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single(MeshConfig::default())
    }
}

impl Topology {
    /// A single-device topology: the plain mesh.
    pub fn single(mesh: MeshConfig) -> Self {
        Topology {
            mesh,
            devices: 1,
            xlink: XLinkConfig::default(),
        }
    }

    /// A multi-device fabric.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero or the global node count would not
    /// fit a `NodeId` (`devices * mesh.nodes() > 256`).
    pub fn fabric(mesh: MeshConfig, devices: u8, xlink: XLinkConfig) -> Self {
        assert!(devices >= 1, "a fabric needs at least one device");
        assert!(
            devices as usize * mesh.nodes() <= 256,
            "{} devices x {} nodes exceeds the 256-node id space",
            devices,
            mesh.nodes()
        );
        Topology {
            mesh,
            devices,
            xlink,
        }
    }

    /// Nodes per device.
    pub fn nodes_per_device(&self) -> usize {
        self.mesh.nodes()
    }

    /// Total node count across all devices.
    pub fn nodes(&self) -> usize {
        self.devices as usize * self.mesh.nodes()
    }

    /// The device a global node belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on this topology.
    pub fn device_of(&self, node: NodeId) -> u8 {
        assert!(
            (node.0 as usize) < self.nodes(),
            "node {node} not on a {}-device fabric of {} nodes each",
            self.devices,
            self.mesh.nodes()
        );
        (node.0 as usize / self.mesh.nodes()) as u8
    }

    /// A global node's local id within its device's mesh.
    pub fn local(&self, node: NodeId) -> NodeId {
        self.device_of(node); // range check
        NodeId((node.0 as usize % self.mesh.nodes()) as u8)
    }

    /// The global node id of device `dev`'s local node `local` — the
    /// inverse of ([`device_of`](Self::device_of), [`local`](Self::local)).
    ///
    /// # Panics
    ///
    /// Panics if `dev` or `local` is out of range.
    pub fn node_at(&self, dev: u8, local: NodeId) -> NodeId {
        assert!(dev < self.devices, "device {dev} of {}", self.devices);
        assert!(
            (local.0 as usize) < self.mesh.nodes(),
            "local node {local} not on the {}x{} device mesh",
            self.mesh.cols,
            self.mesh.rows
        );
        NodeId((dev as usize * self.mesh.nodes() + local.0 as usize) as u8)
    }

    /// Device `dev`'s gateway: its local node 0, where the inter-device
    /// links attach.
    pub fn gateway(&self, dev: u8) -> NodeId {
        self.node_at(dev, NodeId(0))
    }

    /// Whether the directed link `from -> to` is an inter-device link
    /// (both must be adjacent on some route for the answer to describe a
    /// real link; for non-adjacent pairs it merely classifies the pair).
    pub fn is_xlink(&self, from: NodeId, to: NodeId) -> bool {
        self.device_of(from) != self.device_of(to)
    }

    /// `(latency, cycles-per-flit)` of the directed link `from -> to`.
    fn link_timing(&self, from: NodeId, to: NodeId) -> (Cycle, Cycle) {
        if self.is_xlink(from, to) {
            (self.xlink.latency, self.xlink.cpf())
        } else {
            (self.mesh.hop_latency, 1)
        }
    }

    /// The hierarchical route from `src` to `dst`: XY within one device,
    /// or XY to the source gateway, one gateway crossing, then XY to the
    /// destination. Excludes `src`, includes `dst`; empty when equal.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        let (sd, dd) = (self.device_of(src), self.device_of(dst));
        let per = self.mesh.nodes();
        let mut path = Route::new();
        if sd == dd {
            self.mesh.route_into(
                self.local(src),
                self.local(dst),
                sd as usize * per,
                &mut path,
            );
        } else {
            self.mesh
                .route_into(self.local(src), NodeId(0), sd as usize * per, &mut path);
            path.push(self.gateway(dd));
            self.mesh
                .route_into(NodeId(0), self.local(dst), dd as usize * per, &mut path);
        }
        path
    }

    /// Hop count of [`route`](Self::route) without materializing it.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        if self.device_of(a) == self.device_of(b) {
            self.mesh.hops(self.local(a), self.local(b))
        } else {
            self.mesh.hops(self.local(a), NodeId(0)) + 1 + self.mesh.hops(NodeId(0), self.local(b))
        }
    }

    /// The longest route on this topology, in hops: corner to corner
    /// within one device, or corner -> gateway -> gateway -> corner
    /// across devices. Every [`route`](Self::route) is at most this
    /// long; [`Route`]s beyond the inline capacity spill to the heap.
    pub fn max_route_len(&self) -> usize {
        let intra = self.mesh.max_route_len();
        if self.devices > 1 {
            2 * intra + 1
        } else {
            intra
        }
    }

    /// Uncontended arrival delta of a `flits`-flit message from `src` to
    /// `dst`: exactly what [`Mesh::send`] returns on an idle fabric, as
    /// a latency rather than an absolute cycle. The single source of
    /// truth for engine-side latency reasoning (lookahead derivation,
    /// epoch sizing) — scheduling code must derive bounds from this
    /// rather than hardcoding network constants.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, flits: u32) -> Cycle {
        let (sd, dd) = (self.device_of(src), self.device_of(dst));
        if sd == dd {
            return self
                .mesh
                .base_latency(self.local(src), self.local(dst), flits);
        }
        let mesh_hops = (self.mesh.hops(self.local(src), NodeId(0))
            + self.mesh.hops(NodeId(0), self.local(dst))) as Cycle;
        // Head-flit time over every link, then the tail drains at the
        // slowest link's pace (the inter-device link, by construction).
        self.mesh.router_latency
            + mesh_hops * self.mesh.hop_latency
            + self.xlink.latency
            + (flits as Cycle - 1) * self.xlink.cpf()
    }

    /// The minimum uncontended latency of any message between two
    /// *distinct* nodes: the injecting router plus the cheapest link
    /// crossing of **any** class present in the fabric. With one device
    /// this is the mesh's remote floor; with several it also considers
    /// the inter-device class (which matters when an xlink is configured
    /// faster than a mesh hop). The conservative-lookahead bound for
    /// partitioned simulation.
    pub fn min_remote_latency(&self) -> Cycle {
        let mut link = self.mesh.min_link_latency();
        if self.devices > 1 {
            link = link.min(self.xlink.latency);
        }
        self.mesh.router_latency + link
    }

    /// The floor for a message that stays on its own node (crosses no
    /// links): just the injecting router.
    pub fn min_local_latency(&self) -> Cycle {
        self.mesh.router_latency
    }
}

/// A directed link between adjacent fabric nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Link {
    from: NodeId,
    to: NodeId,
}

/// The fabric interconnect: routing, contention, and traffic accounting.
///
/// Single-threaded and deterministic: message latency depends only on the
/// injection time and previously sent messages.
#[derive(Debug)]
pub struct Mesh {
    topology: Topology,
    /// Next cycle at which each directed link is free, indexed by
    /// `from * nodes + to` over global node ids.
    link_free: Vec<Cycle>,
    traffic: TrafficBreakdown,
    messages: u64,
    trace: TraceHandle,
    flow: FlowHandle,
}

impl Mesh {
    /// Creates a single-device mesh with the given configuration.
    pub fn new(config: MeshConfig) -> Self {
        Mesh::with_topology(Topology::single(config))
    }

    /// Creates the interconnect of a (possibly multi-device) topology.
    pub fn with_topology(topology: Topology) -> Self {
        let n = topology.nodes();
        Mesh {
            topology,
            link_free: vec![0; n * n],
            traffic: TrafficBreakdown::default(),
            messages: 0,
            trace: TraceHandle::disabled(),
            flow: FlowHandle::disabled(),
        }
    }

    /// Installs a trace handle; every subsequent [`send`](Self::send)
    /// emits a `noc` event with flit, hop, and arrival-time detail.
    pub fn set_trace(&mut self, trace: &TraceHandle) {
        self.trace = trace.share();
    }

    /// Installs a flow handle; every subsequent [`send`](Self::send)
    /// reports each link crossing (flits, queueing, transit, by class)
    /// and the whole message's injection/arrival to the collector.
    pub fn set_flow(&mut self, flow: &FlowHandle) {
        self.flow = flow.share();
    }

    /// The per-device mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.topology.mesh
    }

    /// The full topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated flit-crossing traffic by class.
    pub fn traffic(&self) -> &TrafficBreakdown {
        &self.traffic
    }

    /// Total messages injected.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Total flit-hop crossings, all classes (shorthand for
    /// `traffic().total()`; the engine samples this every profiling
    /// interval).
    pub fn flit_hops(&self) -> u64 {
        self.traffic.total()
    }

    /// Number of links still occupied past `now`. A message's tail flit
    /// clears its last link no later than the message's delivery, so
    /// once the event queue has drained this must be zero — a non-zero
    /// count at end of run is leaked in-flight traffic, and the quiesce
    /// audit reports it.
    pub fn links_busy_after(&self, now: Cycle) -> usize {
        self.link_free.iter().filter(|&&t| t > now).count()
    }

    fn link_index(&self, link: Link) -> usize {
        link.from.index() * self.topology.nodes() + link.to.index()
    }

    /// Injects `msg` at cycle `now` and returns its arrival cycle at the
    /// destination node, modelling per-link serialization: a link is
    /// busy for `flits x cycles-per-flit` cycles per message crossing it
    /// (mesh links carry a flit per cycle; inter-device links are slower
    /// and narrower per [`XLinkConfig`]).
    ///
    /// Traffic accounting: `flits x hops` crossings are charged to the
    /// message's class, with the gateway crossing counting as one hop. A
    /// message to the local node (`src == dst`) crosses no links, costs
    /// only the router latency, and adds no traffic — this is how
    /// locally scoped synchronization and same-node L2 bank accesses
    /// avoid network overhead.
    pub fn send(&mut self, now: Cycle, msg: &Msg) -> Cycle {
        self.messages += 1;
        let flits = msg.flits();
        let path = self.topology.route(msg.src, msg.dst);
        let hops = path.len() as u32;
        self.traffic.record(msg.class(), flits, hops);

        // Head-flit timing with per-link serialization; the tail has
        // fully arrived `(flits - 1) x cpf` cycles after the head, paced
        // by the slowest link on the path.
        let mut t = now + self.topology.mesh.router_latency;
        let mut from = msg.src;
        let mut queued: Cycle = 0;
        let mut tail_cpf: Cycle = 1;
        for &to in &path {
            let li = self.link_index(Link { from, to });
            let (latency, cpf) = self.topology.link_timing(from, to);
            let ready = t;
            t = t.max(self.link_free[li]);
            let wait = t - ready;
            queued += wait;
            self.link_free[li] = t + flits as Cycle * cpf;
            self.flow
                .link_crossing(from, to, msg.class(), flits, wait, latency);
            t += latency;
            tail_cpf = tail_cpf.max(cpf);
            from = to;
        }
        if hops > 0 {
            t += (flits as Cycle - 1) * tail_cpf; // tail serialization at destination
        }
        self.flow.msg_sent(msg, now, t, queued);
        self.trace.emit(|| TraceEvent::MsgSend {
            src: msg.src,
            dst: msg.dst,
            class: msg.class(),
            flits,
            hops,
            arrival: t,
        });
        t
    }

    /// Resets contention state and traffic counters (for reuse between
    /// independent simulations).
    pub fn reset(&mut self) {
        self.link_free.fill(0);
        self.traffic = TrafficBreakdown::default();
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_types::{Component, LineAddr, MsgClass, MsgKind, WordMask, WORDS_PER_LINE};

    fn ctrl(src: u8, dst: u8) -> Msg {
        Msg {
            src: NodeId(src),
            dst: NodeId(dst),
            dst_comp: Component::L2,
            kind: MsgKind::ReadReq {
                line: LineAddr(0),
                mask: WordMask::full(),
                requester: NodeId(src),
            },
        }
    }

    fn data(src: u8, dst: u8, words: usize) -> Msg {
        Msg {
            src: NodeId(src),
            dst: NodeId(dst),
            dst_comp: Component::L1,
            kind: MsgKind::ReadResp {
                line: LineAddr(0),
                mask: (0..words).collect(),
                data: [0; WORDS_PER_LINE],
            },
        }
    }

    /// Every node id of a config, so no test hardcodes the node count.
    fn all_nodes(c: &MeshConfig) -> impl Iterator<Item = u8> {
        0..c.nodes() as u8
    }

    #[test]
    fn coords_and_hops() {
        let c = MeshConfig::default();
        assert_eq!(c.coords(NodeId(0)), (0, 0));
        assert_eq!(c.coords(NodeId(3)), (3, 0));
        assert_eq!(c.coords(NodeId(15)), (3, 3));
        assert_eq!(c.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(c.hops(NodeId(5), NodeId(5)), 0);
        assert_eq!(c.hops(NodeId(4), NodeId(7)), 3);
    }

    #[test]
    fn coords_on_a_non_square_mesh() {
        let c = MeshConfig::grid(8, 2);
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.coords(NodeId(7)), (7, 0));
        assert_eq!(c.coords(NodeId(8)), (0, 1));
        assert_eq!(c.hops(NodeId(0), NodeId(15)), 8);
        assert_eq!(c.max_route_len(), 8);
        for n in all_nodes(&c) {
            let (x, y) = c.coords(NodeId(n));
            assert_eq!(c.node_at(x, y), NodeId(n), "round trip for {n}");
        }
    }

    #[test]
    fn xy_route_shape() {
        let c = MeshConfig::default();
        // X first, then Y: 0 -> 15 goes 1, 2, 3, 7, 11, 15.
        let path: Vec<u8> = c.route(NodeId(0), NodeId(15)).iter().map(|n| n.0).collect();
        assert_eq!(path, vec![1, 2, 3, 7, 11, 15]);
        assert!(c.route(NodeId(6), NodeId(6)).is_empty());
        // Reverse direction.
        let back: Vec<u8> = c.route(NodeId(15), NodeId(0)).iter().map(|n| n.0).collect();
        assert_eq!(back, vec![14, 13, 12, 8, 4, 0]);
    }

    #[test]
    fn local_delivery_is_free() {
        let mut m = Mesh::new(MeshConfig::default());
        let arr = m.send(10, &ctrl(5, 5));
        assert_eq!(arr, 10 + m.config().router_latency);
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.messages_sent(), 1);
    }

    #[test]
    fn latency_scales_with_distance() {
        let mut m = Mesh::new(MeshConfig::default());
        let near = m.send(0, &ctrl(0, 1));
        m.reset(); // independent measurements
        let far = m.send(0, &ctrl(0, 15));
        assert!(far > near);
        let cfg = MeshConfig::default();
        assert_eq!(near, cfg.router_latency + cfg.hop_latency);
        assert_eq!(far, cfg.router_latency + 6 * cfg.hop_latency);
    }

    #[test]
    fn flit_crossings_accounting() {
        let mut m = Mesh::new(MeshConfig::default());
        m.send(0, &data(0, 15, WORDS_PER_LINE)); // 5 flits x 6 hops
        assert_eq!(m.traffic().class(MsgClass::Read), 30);
        m.send(0, &data(0, 1, 1)); // 2 flits x 1 hop
        assert_eq!(m.traffic().class(MsgClass::Read), 32);
    }

    #[test]
    fn link_contention_serializes() {
        let mut m = Mesh::new(MeshConfig::default());
        // Two 5-flit messages over the same first link at the same time:
        // the second is delayed by the first's serialization.
        let a = m.send(0, &data(0, 1, WORDS_PER_LINE));
        let b = m.send(0, &data(0, 1, WORDS_PER_LINE));
        assert!(b >= a + 5, "second message must wait: a={a} b={b}");
        // A message on a disjoint path is unaffected.
        let mut m2 = Mesh::new(MeshConfig::default());
        let c0 = m2.send(0, &data(15, 14, WORDS_PER_LINE));
        m2.reset();
        m2.send(0, &data(0, 1, WORDS_PER_LINE));
        let c1 = m2.send(0, &data(15, 14, WORDS_PER_LINE));
        assert_eq!(c0, c1);
    }

    #[test]
    fn tail_serialization_charged_once() {
        let m_cfg = MeshConfig::default();
        let mut m = Mesh::new(m_cfg);
        // 5-flit message over 2 hops: router + 2*hop + (5-1) tail.
        let arr = m.send(0, &data(0, 2, WORDS_PER_LINE));
        assert_eq!(arr, m_cfg.router_latency + 2 * m_cfg.hop_latency + 4);
    }

    #[test]
    fn latency_accessors_match_send_on_an_idle_mesh() {
        let cfg = MeshConfig::default();
        // base_latency is definitionally what send() returns uncontended:
        // verify over every (src, dst) pair for a control and a full-line
        // message.
        for a in all_nodes(&cfg) {
            for b in all_nodes(&cfg) {
                let mut m = Mesh::new(cfg);
                let msg = ctrl(a, b);
                let arr = m.send(1000, &msg);
                assert_eq!(
                    arr,
                    1000 + cfg.base_latency(NodeId(a), NodeId(b), msg.flits()),
                    "ctrl {a}->{b}"
                );
                let mut m = Mesh::new(cfg);
                let msg = data(a, b, WORDS_PER_LINE);
                let arr = m.send(1000, &msg);
                assert_eq!(
                    arr,
                    1000 + cfg.base_latency(NodeId(a), NodeId(b), msg.flits()),
                    "data {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn min_latencies_are_tight_floors() {
        let cfg = MeshConfig::default();
        assert_eq!(cfg.min_link_latency(), cfg.hop_latency);
        assert_eq!(cfg.min_local_latency(), cfg.router_latency);
        assert_eq!(
            cfg.min_remote_latency(),
            cfg.router_latency + cfg.hop_latency
        );
        // Tight: an adjacent-node single-flit message achieves the remote
        // floor, a same-node message the local floor.
        let mut m = Mesh::new(cfg);
        assert_eq!(m.send(0, &ctrl(0, 1)), cfg.min_remote_latency());
        assert_eq!(m.send(50, &ctrl(9, 9)), 50 + cfg.min_local_latency());
        // Floors: no (src, dst, flits) combination beats them, and
        // distinct nodes never beat the remote floor.
        for a in all_nodes(&cfg) {
            for b in all_nodes(&cfg) {
                for msg in [ctrl(a, b), data(a, b, 3)] {
                    let base = cfg.base_latency(NodeId(a), NodeId(b), msg.flits());
                    assert!(base >= cfg.min_local_latency());
                    if a != b {
                        assert!(base >= cfg.min_remote_latency(), "{a}->{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn corner_routes_are_golden() {
        let c = MeshConfig::default();
        // The other corner pair, both directions: X fully, then Y.
        let down: Vec<u8> = c.route(NodeId(3), NodeId(12)).iter().map(|n| n.0).collect();
        assert_eq!(down, vec![2, 1, 0, 4, 8, 12]);
        let up: Vec<u8> = c.route(NodeId(12), NodeId(3)).iter().map(|n| n.0).collect();
        assert_eq!(up, vec![13, 14, 15, 11, 7, 3]);
        // Pure-row and pure-column routes have no turn.
        let row: Vec<u8> = c.route(NodeId(4), NodeId(7)).iter().map(|n| n.0).collect();
        assert_eq!(row, vec![5, 6, 7]);
        let col: Vec<u8> = c.route(NodeId(1), NodeId(13)).iter().map(|n| n.0).collect();
        assert_eq!(col, vec![5, 9, 13]);
    }

    #[test]
    fn same_node_send_touches_no_link() {
        let mut m = Mesh::new(MeshConfig::default());
        for _ in 0..3 {
            m.send(0, &data(9, 9, WORDS_PER_LINE));
        }
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.flit_hops(), 0);
        assert_eq!(m.links_busy_after(0), 0, "no link was ever reserved");
        assert_eq!(m.messages_sent(), 3);
    }

    #[test]
    fn simultaneous_arrivals_queue_in_injection_order() {
        let mut m = Mesh::new(MeshConfig::default());
        let cfg = MeshConfig::default();
        // Two 5-flit messages hit link 0->1 on the same cycle: the
        // first injected crosses first; the second waits out the full
        // 5-flit serialization. Golden arrivals.
        let a = m.send(0, &data(0, 1, WORDS_PER_LINE));
        let b = m.send(0, &data(0, 1, WORDS_PER_LINE));
        assert_eq!(a, cfg.router_latency + cfg.hop_latency + 4);
        assert_eq!(b, cfg.router_latency + 5 + cfg.hop_latency + 4);
        // A third message injected later but before the link frees
        // queues behind both.
        let c = m.send(2, &data(0, 1, WORDS_PER_LINE));
        assert_eq!(c, cfg.router_latency + 10 + cfg.hop_latency + 4);
    }

    #[test]
    fn flit_hops_equals_traffic_total() {
        // The two aggregate views of mesh traffic must never drift:
        // `flit_hops()` is what interval samplers read, `traffic()` is
        // what `SimStats` reports.
        let mut m = Mesh::new(MeshConfig::default());
        m.send(0, &data(0, 15, WORDS_PER_LINE));
        m.send(3, &ctrl(5, 5));
        m.send(7, &data(12, 3, 2));
        assert_eq!(m.flit_hops(), m.traffic().total());
        assert!(m.flit_hops() > 0);
    }

    #[test]
    fn flow_attribution_reconciles_with_aggregate_traffic() {
        use gsim_flow::{FlowHandle, FlowSpec};
        let h = FlowHandle::new(FlowSpec::on(), MeshConfig::default().nodes(), 26);
        let mut m = Mesh::new(MeshConfig::default());
        m.set_flow(&h);
        m.send(0, &data(0, 15, WORDS_PER_LINE));
        m.send(0, &data(0, 15, WORDS_PER_LINE)); // queues behind the first
        m.send(1, &ctrl(3, 12));
        m.send(5, &ctrl(9, 9)); // local: no link crossing
        let r = h.take_report(100).unwrap();
        r.reconcile(m.traffic()).expect("per-link sums match");
        assert_eq!(r.total_flits(), m.traffic().total());
        // The second 5-flit message waited on every one of the 6 links.
        let queued: u64 = r.links.iter().map(|l| l.queue_cycles).sum();
        assert!(queued > 0, "contention was observed");
        // Timing is untouched by observation: an identical unobserved
        // mesh produces identical link-free state and arrivals.
        let mut plain = Mesh::new(MeshConfig::default());
        plain.send(0, &data(0, 15, WORDS_PER_LINE));
        plain.send(0, &data(0, 15, WORDS_PER_LINE));
        let observed_arrival = m.send(20, &ctrl(0, 15));
        let plain_arrival = plain.send(20, &ctrl(0, 15));
        assert_eq!(observed_arrival, plain_arrival);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = Mesh::new(MeshConfig::default());
        m.send(0, &data(0, 15, 4));
        m.reset();
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.messages_sent(), 0);
        let a = m.send(0, &ctrl(0, 1));
        assert_eq!(
            a,
            MeshConfig::default().router_latency + MeshConfig::default().hop_latency
        );
    }

    #[test]
    #[should_panic(expected = "not on a")]
    fn off_mesh_node_panics() {
        let c = MeshConfig::default();
        let _ = c.coords(NodeId(c.nodes() as u8));
    }

    mod fabric {
        use super::*;

        fn two_dev() -> Topology {
            Topology::fabric(MeshConfig::default(), 2, XLinkConfig::default())
        }

        #[test]
        fn single_device_topology_matches_the_plain_mesh() {
            let cfg = MeshConfig::default();
            let t = Topology::single(cfg);
            assert_eq!(t.nodes(), cfg.nodes());
            assert_eq!(t.min_remote_latency(), cfg.min_remote_latency());
            assert_eq!(t.min_local_latency(), cfg.min_local_latency());
            assert_eq!(t.max_route_len(), cfg.max_route_len());
            for a in all_nodes(&cfg) {
                for b in all_nodes(&cfg) {
                    let (a, b) = (NodeId(a), NodeId(b));
                    assert_eq!(t.route(a, b), cfg.route(a, b));
                    assert_eq!(t.hops(a, b), cfg.hops(a, b));
                    for flits in [1, 5] {
                        assert_eq!(t.base_latency(a, b, flits), cfg.base_latency(a, b, flits));
                    }
                }
            }
        }

        #[test]
        fn global_ids_round_trip() {
            let t = two_dev();
            assert_eq!(t.nodes(), 32);
            assert_eq!(t.nodes_per_device(), 16);
            for n in 0..t.nodes() as u8 {
                let node = NodeId(n);
                let (dev, local) = (t.device_of(node), t.local(node));
                assert_eq!(t.node_at(dev, local), node);
            }
            assert_eq!(t.gateway(0), NodeId(0));
            assert_eq!(t.gateway(1), NodeId(16));
        }

        #[test]
        fn cross_device_routes_go_gateway_to_gateway() {
            let t = two_dev();
            // 5 (dev 0) -> 22 (dev 1): XY to gateway 0, xlink to
            // gateway 16, XY onward. Node 5 is at (1,1): X back to
            // (0,1)=4, Y up to (0,0)=0; then 16; then 16->...->22.
            let path: Vec<u8> = t.route(NodeId(5), NodeId(22)).iter().map(|n| n.0).collect();
            assert_eq!(path, vec![4, 0, 16, 17, 18, 22]);
            // From a gateway to a gateway: exactly one hop.
            let gw: Vec<u8> = t.route(NodeId(0), NodeId(16)).iter().map(|n| n.0).collect();
            assert_eq!(gw, vec![16]);
            // Same-device routing never leaves the device.
            for n in t.route(NodeId(17), NodeId(31)) {
                assert_eq!(t.device_of(n), 1);
            }
        }

        #[test]
        fn longest_cross_device_route_fits_and_is_valid() {
            // Regression for the old `InlineVec<NodeId, 8>` route
            // capacity: the longest 2-device route (far corner to far
            // corner: 6 + 1 + 6 = 13 hops) exceeds 8 and must still
            // route correctly.
            let t = two_dev();
            let (src, dst) = (NodeId(15), NodeId(31)); // both far corners
            let route = t.route(src, dst);
            assert_eq!(route.len(), 13);
            assert_eq!(route.len(), t.max_route_len());
            assert_eq!(route.last().copied(), Some(dst));
            let mut prev = src;
            for &n in &route {
                assert_eq!(t.hops(prev, n), 1, "{prev}->{n} must be one hop");
                prev = n;
            }
            // And a route beyond the inline capacity spills cleanly: a
            // 2-device 8x8 fabric peaks at 2*14+1 = 29 hops.
            let big = Topology::fabric(MeshConfig::grid(8, 8), 2, XLinkConfig::default());
            let r = big.route(NodeId(63), NodeId(127));
            assert_eq!(r.len(), big.max_route_len());
            assert_eq!(r.len(), 29);
            assert_eq!(r.last().copied(), Some(NodeId(127)));
        }

        #[test]
        fn send_matches_base_latency_across_devices() {
            let t = two_dev();
            for (a, b) in [(0u8, 16u8), (5, 22), (15, 31), (31, 4), (20, 9)] {
                for msg in [ctrl(a, b), data(a, b, WORDS_PER_LINE)] {
                    let mut m = Mesh::with_topology(t);
                    let arr = m.send(500, &msg);
                    assert_eq!(
                        arr,
                        500 + t.base_latency(NodeId(a), NodeId(b), msg.flits()),
                        "{a}->{b} x{}",
                        msg.flits()
                    );
                }
            }
        }

        #[test]
        fn xlink_latency_dominates_cross_device_sends() {
            let t = two_dev();
            let mut m = Mesh::with_topology(t);
            let local = m.send(0, &ctrl(0, 15));
            m.reset();
            let cross = m.send(0, &ctrl(0, 16));
            assert!(
                cross > local,
                "one gateway crossing ({cross}) must outweigh a full on-chip route ({local})"
            );
            assert_eq!(cross, t.mesh.router_latency + t.xlink.latency);
        }

        #[test]
        fn xlink_serialization_uses_cycles_per_flit() {
            let t = two_dev();
            let mut m = Mesh::with_topology(t);
            // Two full-line messages gateway-to-gateway: the second
            // waits out flits x cpf of link occupancy.
            let a = m.send(0, &data(0, 16, WORDS_PER_LINE));
            let b = m.send(0, &data(0, 16, WORDS_PER_LINE));
            let occupancy = 5 * t.xlink.cycles_per_flit;
            assert_eq!(b - a, occupancy);
            // And the tail drains at the xlink's pace.
            assert_eq!(
                a,
                t.mesh.router_latency + t.xlink.latency + 4 * t.xlink.cycles_per_flit
            );
        }

        #[test]
        fn min_remote_latency_considers_every_link_class() {
            // Slow xlink: the mesh hop stays the floor (the common case).
            let slow = two_dev();
            assert_eq!(
                slow.min_remote_latency(),
                slow.mesh.router_latency + slow.mesh.hop_latency
            );
            // Fast xlink (faster than a mesh hop): the floor must
            // follow it — deriving lookahead from the mesh alone would
            // overshoot and miss early cross-device arrivals.
            let fast = Topology::fabric(
                MeshConfig::default(),
                2,
                XLinkConfig {
                    latency: 1,
                    cycles_per_flit: 1,
                },
            );
            assert_eq!(fast.min_remote_latency(), fast.mesh.router_latency + 1);
            let mut m = Mesh::with_topology(fast);
            assert_eq!(m.send(0, &ctrl(0, 16)), fast.min_remote_latency());
        }

        #[test]
        fn traffic_counts_the_gateway_crossing_as_one_hop() {
            let t = two_dev();
            let mut m = Mesh::with_topology(t);
            m.send(0, &ctrl(0, 16)); // 1 flit x 1 hop
            assert_eq!(m.traffic().total(), 1);
            m.send(0, &data(15, 31, WORDS_PER_LINE)); // 5 flits x 13 hops
            assert_eq!(m.traffic().total(), 1 + 5 * 13);
        }

        #[test]
        fn flow_reconciles_on_the_multi_device_link_set() {
            use gsim_flow::{FlowHandle, FlowSpec};
            let t = two_dev();
            let h = FlowHandle::new(FlowSpec::on(), t.nodes(), 26);
            let mut m = Mesh::with_topology(t);
            m.set_flow(&h);
            m.send(0, &data(5, 22, WORDS_PER_LINE));
            m.send(0, &data(15, 31, WORDS_PER_LINE));
            m.send(2, &ctrl(16, 0));
            m.send(3, &ctrl(9, 9));
            let r = h.take_report(200).unwrap();
            r.reconcile(m.traffic()).expect("per-link sums match");
            // The gateway links appear in the report as ordinary links.
            assert!(
                r.links
                    .iter()
                    .any(|l| t.is_xlink(NodeId(l.from), NodeId(l.to))),
                "inter-device crossings must be attributed"
            );
        }

        #[test]
        #[should_panic(expected = "exceeds the 256-node id space")]
        fn oversized_fabric_panics() {
            let _ = Topology::fabric(MeshConfig::grid(8, 8), 5, XLinkConfig::default());
        }

        #[test]
        #[should_panic(expected = "not on a")]
        fn off_fabric_node_panics() {
            let t = two_dev();
            let _ = t.device_of(NodeId(32));
        }
    }

    mod properties {
        use super::*;
        use gsim_types::Rng64;

        /// Exhaustive over all (src, dst) pairs of several geometries:
        /// route length matches the Manhattan distance and every step is
        /// one hop.
        #[test]
        fn routes_are_shortest_and_adjacent() {
            for c in [
                MeshConfig::default(),
                MeshConfig::grid(2, 8),
                MeshConfig::grid(5, 3),
            ] {
                for a in all_nodes(&c) {
                    for b in all_nodes(&c) {
                        let route = c.route(NodeId(a), NodeId(b));
                        assert_eq!(route.len() as u32, c.hops(NodeId(a), NodeId(b)));
                        assert!(route.len() <= c.max_route_len());
                        let mut prev = NodeId(a);
                        for n in route {
                            assert_eq!(c.hops(prev, n), 1, "{a}->{b} via {n}");
                            prev = n;
                        }
                        if a != b {
                            assert_eq!(prev, NodeId(b));
                        }
                    }
                }
            }
        }

        /// Randomized widths, heights, and device counts: `coords` /
        /// `node_at` and `device_of` / `local` / `node_at` round-trip,
        /// and every route is valid — adjacent hops, correct endpoints,
        /// length within `max_route_len`.
        #[test]
        fn random_topologies_route_validly() {
            let mut rng = Rng64::seed_from_u64(0xfab1);
            for _ in 0..64 {
                let cols = rng.gen_u32(1, 9) as u8;
                let rows = rng.gen_u32(1, 9) as u8;
                let mesh = MeshConfig::grid(cols, rows);
                let max_dev = (256 / mesh.nodes()).clamp(1, 4);
                let devices = rng.gen_u32(1, max_dev as u32 + 1) as u8;
                let t = Topology::fabric(
                    mesh,
                    devices,
                    XLinkConfig {
                        latency: rng.gen_u64(1, 100),
                        cycles_per_flit: rng.gen_u64(1, 8),
                    },
                );
                // Round trips over every node.
                for n in 0..t.nodes() as u8 {
                    let node = NodeId(n);
                    let local = t.local(node);
                    let (x, y) = t.mesh.coords(local);
                    assert_eq!(t.mesh.node_at(x, y), local);
                    assert_eq!(t.node_at(t.device_of(node), local), node);
                }
                // Random route pairs.
                for _ in 0..32 {
                    let a = NodeId(rng.gen_u32(0, t.nodes() as u32) as u8);
                    let b = NodeId(rng.gen_u32(0, t.nodes() as u32) as u8);
                    let route = t.route(a, b);
                    assert_eq!(route.len() as u32, t.hops(a, b));
                    assert!(
                        route.len() <= t.max_route_len(),
                        "{a}->{b} on {cols}x{rows}x{devices}"
                    );
                    let mut prev = a;
                    let mut xlinks = 0;
                    for &n in &route {
                        assert_eq!(t.hops(prev, n), 1);
                        if t.is_xlink(prev, n) {
                            xlinks += 1;
                            assert_eq!(t.local(prev), NodeId(0), "xlink leaves a gateway");
                            assert_eq!(t.local(n), NodeId(0), "xlink enters a gateway");
                        }
                        prev = n;
                    }
                    assert_eq!(xlinks, u32::from(t.device_of(a) != t.device_of(b)));
                    if a != b {
                        assert_eq!(prev, b);
                    } else {
                        assert!(route.is_empty());
                    }
                }
            }
        }

        #[test]
        fn arrival_never_before_injection() {
            let cfg = MeshConfig::default();
            let mut rng = Rng64::seed_from_u64(0x90c1);
            for _ in 0..256 {
                let n = cfg.nodes() as u32;
                let (a, b) = (rng.gen_u32(0, n) as u8, rng.gen_u32(0, n) as u8);
                let now = rng.gen_u64(0, 100_000);
                let mut m = Mesh::new(cfg);
                let arr = m.send(now, &ctrl(a, b));
                assert!(arr >= now + cfg.router_latency);
            }
        }

        #[test]
        fn traffic_is_flits_times_hops() {
            let t = Topology::fabric(MeshConfig::default(), 2, XLinkConfig::default());
            let mut rng = Rng64::seed_from_u64(0x90c2);
            for _ in 0..256 {
                let n = t.nodes() as u32;
                let (a, b) = (rng.gen_u32(0, n) as u8, rng.gen_u32(0, n) as u8);
                let words = rng.gen_usize(1, 17);
                let mut m = Mesh::with_topology(t);
                let msg = data(a, b, words);
                m.send(0, &msg);
                let want = msg.flits() as u64 * t.hops(NodeId(a), NodeId(b)) as u64;
                assert_eq!(m.traffic().total(), want);
            }
        }

        #[test]
        fn send_emits_noc_trace_events() {
            use gsim_trace::{RingRecorder, TraceEvent, TraceHandle};
            let h = TraceHandle::new(RingRecorder::new(16));
            let mut m = Mesh::new(MeshConfig::default());
            m.set_trace(&h);
            h.set_now(7);
            let arr = m.send(7, &ctrl(0, 15));
            let got = h.recorder().unwrap().borrow().to_vec();
            assert_eq!(got.len(), 1);
            match got[0] {
                (
                    7,
                    TraceEvent::MsgSend {
                        src,
                        dst,
                        flits,
                        hops,
                        arrival,
                        ..
                    },
                ) => {
                    assert_eq!((src, dst), (NodeId(0), NodeId(15)));
                    assert_eq!((flits, hops), (1, 6));
                    assert_eq!(arrival, arr);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
}
