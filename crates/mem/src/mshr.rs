//! Miss status holding registers (MSHRs) with same-line coalescing and
//! DeNovoSync0 distributed-queue slots.
//!
//! One [`MshrFile`] sits next to each L1. Every outstanding line has one
//! [`MshrEntry`] that tracks:
//!
//! * which words have requests in flight (`pending`) — further misses on
//!   those words coalesce instead of re-requesting;
//! * the *waiters*: core requests that complete once their words arrive.
//!   Multiple thread blocks on the same CU coalesce here, which is how
//!   DeNovo services all local synchronization requests before any queued
//!   remote request (paper §3);
//! * the *queued forwards*: registration-forward messages that arrived
//!   while this cache's own registration ack was still in flight — the
//!   distributed queue of DeNovoSync0. They are released only after the
//!   fill, and after all local waiters were serviced.

use gsim_types::{FxHashMap, LineAddr, WordMask};

/// One outstanding line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrEntry<W, F> {
    /// Words with a request in flight.
    pub pending: WordMask,
    /// Core requests waiting on words of this line; each completes when
    /// its whole mask has been filled.
    pub waiters: Vec<(WordMask, W)>,
    /// Remote registration forwards queued behind our own pending
    /// registration (DeNovoSync0 distributed queue).
    pub queued_fwds: Vec<F>,
}

impl<W, F> Default for MshrEntry<W, F> {
    fn default() -> Self {
        MshrEntry {
            pending: WordMask::empty(),
            waiters: Vec::new(),
            queued_fwds: Vec::new(),
        }
    }
}

/// The MSHR file of one cache.
///
/// `W` is the controller's waiter token (e.g. a request id plus operation
/// kind); `F` is its queued-forward record.
///
/// # Examples
///
/// ```
/// use gsim_mem::MshrFile;
/// use gsim_types::{LineAddr, WordMask};
///
/// let mut m: MshrFile<u32, ()> = MshrFile::new(4);
/// // First miss on word 3: must send a request.
/// let send = m.request(LineAddr(9), WordMask::single(3), 100);
/// assert_eq!(send, WordMask::single(3));
/// // Second miss on the same word coalesces: nothing new to send.
/// let send = m.request(LineAddr(9), WordMask::single(3), 101);
/// assert!(send.is_empty());
/// // The fill completes both waiters.
/// let (done, _fwds) = m.complete(LineAddr(9), WordMask::single(3));
/// assert_eq!(done, vec![100, 101]);
/// ```
#[derive(Debug)]
pub struct MshrFile<W, F> {
    entries: FxHashMap<LineAddr, MshrEntry<W, F>>,
    capacity: usize,
    high_water: usize,
}

impl<W, F> MshrFile<W, F> {
    /// Creates an MSHR file holding up to `capacity` outstanding lines.
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            entries: FxHashMap::default(),
            capacity,
            high_water: 0,
        }
    }

    /// Number of outstanding lines.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Highest simultaneous occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The configured capacity in outstanding lines (pairs with
    /// [`outstanding`](Self::outstanding) for occupancy reporting).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a new line can be accepted.
    pub fn has_room_for(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line) || self.entries.len() < self.capacity
    }

    /// The outstanding lines with their pending word masks, sorted by
    /// line address (the quiesce audit names leaked entries with this).
    pub fn outstanding_lines(&self) -> Vec<(LineAddr, WordMask)> {
        let mut v: Vec<(LineAddr, WordMask)> =
            self.entries.iter().map(|(&l, e)| (l, e.pending)).collect();
        v.sort_by_key(|&(l, _)| l);
        v
    }

    /// Registers a core request for `mask` words of `line` and returns
    /// the subset of words that must actually be requested from the next
    /// level (words already pending coalesce and return empty).
    ///
    /// # Panics
    ///
    /// Panics if the MSHR file is full and `line` has no entry — callers
    /// must check [`MshrFile::has_room_for`] first; the simulation engine
    /// stalls the issuing thread block in that case.
    pub fn request(&mut self, line: LineAddr, mask: WordMask, waiter: W) -> WordMask {
        assert!(
            self.has_room_for(line),
            "MSHR overflow: {} outstanding lines",
            self.entries.len()
        );
        let entry = self.entries.entry(line).or_default();
        let to_send = mask & !entry.pending;
        entry.pending |= mask;
        entry.waiters.push((mask, waiter));
        self.high_water = self.high_water.max(self.entries.len());
        to_send
    }

    /// Like [`MshrFile::request`], but decouples what the waiter *waits
    /// on* (`waiter_mask`) from what is *fetched* (`fetch_mask`) — DeNovo
    /// demand loads wait on one word while fetching the rest of the line.
    /// Returns the subset of `fetch_mask` that must actually be requested.
    ///
    /// Every word in `fetch_mask` must eventually be filled via
    /// [`MshrFile::complete`] or the entry never retires; the DeNovo L2
    /// guarantees this by answering (directly or through an owner forward)
    /// every requested word.
    ///
    /// # Panics
    ///
    /// Panics if the MSHR file is full and `line` has no entry, or if
    /// `waiter_mask` is not contained in `fetch_mask` union the already
    /// pending words.
    pub fn request_fetch(
        &mut self,
        line: LineAddr,
        waiter_mask: WordMask,
        fetch_mask: WordMask,
        waiter: W,
    ) -> WordMask {
        assert!(
            self.has_room_for(line),
            "MSHR overflow: {} outstanding lines",
            self.entries.len()
        );
        let entry = self.entries.entry(line).or_default();
        assert!(
            (waiter_mask & !(fetch_mask | entry.pending)).is_empty(),
            "waiter waits on words that are never fetched"
        );
        let to_send = fetch_mask & !entry.pending;
        entry.pending |= fetch_mask;
        entry.waiters.push((waiter_mask, waiter));
        self.high_water = self.high_water.max(self.entries.len());
        to_send
    }

    /// Queues a remote registration forward behind this cache's own
    /// pending registration for `line`. Returns `Err(fwd)` when there is
    /// no entry (the caller should handle the forward immediately).
    pub fn queue_fwd(&mut self, line: LineAddr, fwd: F) -> Result<(), F> {
        match self.entries.get_mut(&line) {
            Some(e) => {
                e.queued_fwds.push(fwd);
                Ok(())
            }
            None => Err(fwd),
        }
    }

    /// Whether `line` has an entry (i.e. an in-flight request).
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Words of `line` with requests in flight.
    pub fn pending_mask(&self, line: LineAddr) -> WordMask {
        self.entries
            .get(&line)
            .map(|e| e.pending)
            .unwrap_or_default()
    }

    /// Records the arrival of `filled` words for `line`. Returns the
    /// waiters whose masks are now fully satisfied (in arrival order —
    /// all same-CU waiters are serviced here, before any queued remote
    /// forward) and, when the entry retires (no pending words or waiters
    /// remain), the queued forwards to process next.
    pub fn complete(&mut self, line: LineAddr, filled: WordMask) -> (Vec<W>, Vec<F>) {
        let Some(entry) = self.entries.get_mut(&line) else {
            return (Vec::new(), Vec::new());
        };
        entry.pending = entry.pending & !filled;
        let mut done = Vec::new();
        let mut remaining = Vec::with_capacity(entry.waiters.len());
        for (mask, w) in entry.waiters.drain(..) {
            let left = mask & !filled;
            if left.is_empty() {
                done.push(w);
            } else {
                remaining.push((left, w));
            }
        }
        entry.waiters = remaining;
        if entry.pending.is_empty() && entry.waiters.is_empty() {
            let e = self.entries.remove(&line).expect("entry exists");
            (done, e.queued_fwds)
        } else {
            (done, Vec::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = MshrFile<u32, &'static str>;

    #[test]
    fn coalescing_suppresses_duplicate_requests() {
        let mut m = M::new(8);
        let l = LineAddr(1);
        assert_eq!(m.request(l, WordMask::single(0), 1), WordMask::single(0));
        assert!(m.request(l, WordMask::single(0), 2).is_empty());
        // A different word of the same line still needs a request.
        assert_eq!(m.request(l, WordMask::single(4), 3), WordMask::single(4));
        assert_eq!(m.outstanding(), 1);
        assert_eq!(m.high_water(), 1);
    }

    #[test]
    fn partial_fill_completes_only_satisfied_waiters() {
        let mut m = M::new(8);
        let l = LineAddr(2);
        let both = WordMask::single(0) | WordMask::single(1);
        m.request(l, both, 10);
        m.request(l, WordMask::single(0), 11);
        let (done, fwds) = m.complete(l, WordMask::single(0));
        assert_eq!(done, vec![11]);
        assert!(fwds.is_empty());
        assert!(m.is_pending(l));
        let (done, _) = m.complete(l, WordMask::single(1));
        assert_eq!(done, vec![10]);
        assert!(!m.is_pending(l));
    }

    #[test]
    fn queued_forwards_release_on_retire() {
        let mut m = M::new(8);
        let l = LineAddr(3);
        m.request(l, WordMask::single(5), 1);
        assert!(m.queue_fwd(l, "remote-a").is_ok());
        assert!(m.queue_fwd(l, "remote-b").is_ok());
        // No entry for another line: forward bounces back.
        assert_eq!(m.queue_fwd(LineAddr(9), "x"), Err("x"));
        let (done, fwds) = m.complete(l, WordMask::single(5));
        assert_eq!(done, vec![1]);
        assert_eq!(fwds, vec!["remote-a", "remote-b"]);
    }

    #[test]
    fn local_waiters_drain_before_forwards() {
        // Two local waiters and a queued remote forward: the fill hands
        // back both waiters and only then the forward, in one call —
        // callers service `done` before `fwds`.
        let mut m = M::new(8);
        let l = LineAddr(4);
        m.request(l, WordMask::single(0), 100);
        m.request(l, WordMask::single(0), 101);
        m.queue_fwd(l, "steal").unwrap();
        let (done, fwds) = m.complete(l, WordMask::single(0));
        assert_eq!(done, vec![100, 101]);
        assert_eq!(fwds, vec!["steal"]);
    }

    #[test]
    fn capacity_enforced() {
        let mut m = M::new(2);
        m.request(LineAddr(0), WordMask::single(0), 1);
        m.request(LineAddr(1), WordMask::single(0), 2);
        assert!(!m.has_room_for(LineAddr(2)));
        assert!(m.has_room_for(LineAddr(1))); // existing entry always ok
        assert_eq!(m.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "MSHR overflow")]
    fn overflow_panics() {
        let mut m = M::new(1);
        m.request(LineAddr(0), WordMask::single(0), 1);
        m.request(LineAddr(1), WordMask::single(0), 2);
    }

    #[test]
    fn request_fetch_decouples_demand_from_fetch() {
        let mut m = M::new(8);
        let l = LineAddr(5);
        // Demand word 2, fetch the whole line.
        let send = m.request_fetch(l, WordMask::single(2), WordMask::full(), 7);
        assert_eq!(send, WordMask::full());
        // A later demand on an already-fetching word sends nothing.
        let send = m.request_fetch(l, WordMask::single(9), WordMask::single(9), 8);
        assert!(send.is_empty());
        // Partial fill with the demand word completes the first waiter only.
        let (done, _) = m.complete(l, WordMask::single(2));
        assert_eq!(done, vec![7]);
        assert!(m.is_pending(l));
        // Filling everything else retires the entry.
        let (done, _) = m.complete(l, !WordMask::single(2));
        assert_eq!(done, vec![8]);
        assert!(!m.is_pending(l));
    }

    #[test]
    #[should_panic(expected = "never fetched")]
    fn request_fetch_rejects_unwaitable_masks() {
        let mut m = M::new(8);
        m.request_fetch(LineAddr(0), WordMask::single(3), WordMask::single(1), 1);
    }

    #[test]
    fn fill_unknown_line_is_noop() {
        let mut m = M::new(2);
        let (done, fwds) = m.complete(LineAddr(77), WordMask::full());
        assert!(done.is_empty() && fwds.is_empty());
    }

    mod properties {
        use super::*;
        use gsim_types::{Rng64, WORDS_PER_LINE};
        use std::collections::{BTreeMap, HashMap};

        fn random_mask(rng: &mut Rng64) -> WordMask {
            (0..WORDS_PER_LINE)
                .filter(|_| rng.gen_bool())
                .fold(WordMask::empty(), |m, i| m | WordMask::single(i))
        }

        /// Random coalescing requests and partial fills, against a
        /// word-level model: occupancy never exceeds capacity, the file
        /// only ever sends words not already in flight, and every waiter
        /// completes exactly once.
        #[test]
        fn merge_respects_capacity_and_waiters_complete_exactly_once() {
            let mut rng = Rng64::seed_from_u64(0x3511);
            for _ in 0..48 {
                let cap = rng.gen_usize(1, 6);
                let mut m: MshrFile<u32, ()> = MshrFile::new(cap);
                // BTreeMap: the "pick a line to fill" choice below must
                // be deterministic for the seed to reproduce.
                let mut pending: BTreeMap<u64, WordMask> = BTreeMap::new();
                let mut done: Vec<u32> = Vec::new();
                let mut issued = 0u32;
                for _ in 0..rng.gen_usize(50, 300) {
                    if rng.gen_bool() {
                        let line = LineAddr(rng.gen_u64(0, 8));
                        let mask = random_mask(&mut rng);
                        if mask.is_empty() || !m.has_room_for(line) {
                            continue;
                        }
                        let sent = m.request(line, mask, issued);
                        let model = pending.entry(line.0).or_default();
                        assert_eq!(sent, mask & !*model, "send only words not in flight");
                        *model |= mask;
                        issued += 1;
                    } else if let Some((&l, &words)) = pending.iter().next() {
                        let fill = random_mask(&mut rng) & words;
                        if fill.is_empty() {
                            continue;
                        }
                        let (completed, _) = m.complete(LineAddr(l), fill);
                        done.extend(completed);
                        let left = words & !fill;
                        if left.is_empty() {
                            pending.remove(&l);
                            assert!(!m.is_pending(LineAddr(l)), "fully filled entry retires");
                        } else {
                            pending.insert(l, left);
                            assert_eq!(m.pending_mask(LineAddr(l)), left);
                        }
                    }
                    assert!(m.outstanding() <= cap);
                    assert!(m.high_water() <= cap);
                }
                // Flush everything still in flight.
                for (l, words) in pending {
                    let (completed, _) = m.complete(LineAddr(l), words);
                    done.extend(completed);
                }
                assert_eq!(m.outstanding(), 0);
                done.sort_unstable();
                assert_eq!(done, (0..issued).collect::<Vec<_>>(), "each waiter once");
            }
        }

        /// Queued remote forwards (the DeNovoSync0 distributed queue)
        /// are handed back exactly once, in arrival order, and only when
        /// their line retires; forwards for idle lines bounce.
        #[test]
        fn queued_forwards_release_once_in_order_at_retire() {
            let mut rng = Rng64::seed_from_u64(0x3512);
            for _ in 0..48 {
                let mut m: MshrFile<u32, u32> = MshrFile::new(4);
                let mut queued: HashMap<u64, Vec<u32>> = HashMap::new();
                let mut released: Vec<u32> = Vec::new();
                let mut next = (0u32, 0u32); // (waiter id, fwd id)
                for _ in 0..rng.gen_usize(50, 200) {
                    let line = LineAddr(rng.gen_u64(0, 6));
                    match rng.gen_u32(0, 3) {
                        0 if m.has_room_for(line) => {
                            m.request(line, random_mask(&mut rng) | WordMask::single(0), next.0);
                            next.0 += 1;
                        }
                        1 => {
                            let res = m.queue_fwd(line, next.1);
                            if m.is_pending(line) {
                                assert_eq!(res, Ok(()));
                                queued.entry(line.0).or_default().push(next.1);
                            } else {
                                assert_eq!(res, Err(next.1), "idle line bounces the forward");
                            }
                            next.1 += 1;
                        }
                        _ => {
                            let (_, fwds) = m.complete(line, m.pending_mask(line));
                            if !m.is_pending(line) {
                                assert_eq!(fwds, queued.remove(&line.0).unwrap_or_default());
                                released.extend(fwds);
                            } else {
                                assert!(fwds.is_empty(), "forwards only release at retire");
                            }
                        }
                    }
                }
                let mut expect: Vec<u32> = (0..next.1).collect();
                expect.retain(|f| !released.contains(f));
                // Everything not yet released is still queued (or bounced).
                let still: Vec<u32> = queued.into_values().flatten().collect();
                assert!(still.iter().all(|f| expect.contains(f)));
            }
        }
    }
}
