//! Set-associative cache arrays with word-granularity coherence state.
//!
//! The same array backs every studied protocol (paper §4.2):
//!
//! * **GPU-D**: only line-level validity is used (a line is valid iff any
//!   word is [`WordState::Valid`]); dirty data lives in the store buffer.
//! * **GPU-H**: per-word dirty bits — [`WordState::Owned`] means *dirty*.
//! * **DeNovo (DD/DD+RO/DH)**: the full three-state word protocol —
//!   [`WordState::Owned`] means *registered*.
//!
//! The [`CacheLine::extra`] type parameter carries protocol-specific
//! per-line metadata: the DeNovo L2 registry stores the owner core per
//! word there, and DD+RO tags words belonging to the read-only region.

use gsim_types::{LineAddr, Value, WordMask, WORDS_PER_LINE};

/// Coherence state of one word in a cache line (2 bits in hardware —
/// exactly the paper's §4.2 overhead accounting).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WordState {
    /// No usable copy of the word.
    #[default]
    Invalid,
    /// A readable copy that self-invalidation may discard at an acquire.
    Valid,
    /// DeNovo: *Registered* (this cache owns the word — the up-to-date
    /// copy, kept across acquires). GPU-H: *dirty* (written locally,
    /// logically part of the store buffer).
    Owned,
}

impl WordState {
    /// Whether a load may be satisfied from this word.
    #[inline]
    pub fn readable(self) -> bool {
        !matches!(self, WordState::Invalid)
    }
}

/// Cache geometry: total capacity and associativity over fixed 64 B lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total data capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub ways: usize,
}

impl CacheGeometry {
    /// The paper's L1: 32 KB, 8-way (Table 3).
    pub fn l1() -> Self {
        CacheGeometry {
            size_bytes: 32 * 1024,
            ways: 8,
        }
    }

    /// One bank of the paper's L2: 4 MB / 16 banks = 256 KB, 16-way.
    pub fn l2_bank() -> Self {
        CacheGeometry {
            size_bytes: 256 * 1024,
            ways: 16,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into whole sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / gsim_types::LINE_BYTES;
        let sets = lines as usize / self.ways;
        assert!(
            sets > 0 && sets * self.ways == lines as usize,
            "geometry {self:?} does not divide into whole sets"
        );
        sets
    }
}

/// One cache line: tag, per-word state, data, and protocol metadata.
///
/// Per-word coherence state is packed into two [`WordMask`] bitmaps
/// (exactly-Valid and Owned; a word in neither is Invalid), so flash
/// operations and state-mask queries — the hottest loops of the GPU
/// protocols' acquire/release paths — are a couple of 16-bit bit ops
/// per line instead of a 16-element scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheLine<X> {
    /// The line address this way currently holds.
    pub tag: LineAddr,
    /// Words in [`WordState::Valid`] (disjoint from `owned`).
    valid: WordMask,
    /// Words in [`WordState::Owned`].
    owned: WordMask,
    /// Per-word data (meaningful only where the state is readable).
    pub data: [Value; WORDS_PER_LINE],
    /// Protocol-specific per-line metadata.
    pub extra: X,
    lru_stamp: u64,
}

impl<X> CacheLine<X> {
    /// The coherence state of word `i`.
    #[inline]
    pub fn word(&self, i: usize) -> WordState {
        if self.owned.contains(i) {
            WordState::Owned
        } else if self.valid.contains(i) {
            WordState::Valid
        } else {
            WordState::Invalid
        }
    }

    /// Sets the coherence state of word `i`.
    #[inline]
    pub fn set_word(&mut self, i: usize, to: WordState) {
        self.valid.remove(i);
        self.owned.remove(i);
        match to {
            WordState::Invalid => {}
            WordState::Valid => self.valid.insert(i),
            WordState::Owned => self.owned.insert(i),
        }
    }

    /// Sets every word in `mask` to `to`.
    #[inline]
    pub fn set_mask(&mut self, mask: WordMask, to: WordState) {
        self.valid = self.valid & !mask;
        self.owned = self.owned & !mask;
        match to {
            WordState::Invalid => {}
            WordState::Valid => self.valid |= mask,
            WordState::Owned => self.owned |= mask,
        }
    }

    /// Mask of words in the given state.
    #[inline]
    pub fn mask_in(&self, s: WordState) -> WordMask {
        match s {
            WordState::Invalid => !(self.valid | self.owned),
            WordState::Valid => self.valid,
            WordState::Owned => self.owned,
        }
    }

    /// Mask of readable (Valid or Owned) words.
    #[inline]
    pub fn readable_mask(&self) -> WordMask {
        self.valid | self.owned
    }

    /// Whether any word is readable.
    #[inline]
    pub fn any_readable(&self) -> bool {
        !self.readable_mask().is_empty()
    }

    /// Whether any word is owned.
    #[inline]
    pub fn any_owned(&self) -> bool {
        !self.owned.is_empty()
    }

    /// Fills the masked words with `data`, setting them to `to`.
    pub fn fill(&mut self, mask: WordMask, data: &[Value; WORDS_PER_LINE], to: WordState) {
        self.set_mask(mask, to);
        for i in mask.iter() {
            self.data[i] = data[i];
        }
    }

    /// The acquire self-invalidation sweep on one line: drops every
    /// [`WordState::Valid`] word except those in `keep` (DD+RO passes
    /// its read-only-region words; a GPU flash passes the empty mask),
    /// leaving Owned words untouched. Returns the mask of words
    /// actually dropped — the quantity the observability layers
    /// (gsim-prof's hot-line sketch, gsim-lens's acquire cost ledger)
    /// attribute per line.
    #[inline]
    pub fn invalidate_valid(&mut self, keep: WordMask) -> WordMask {
        let dropped = self.valid & !keep;
        self.valid = self.valid & keep;
        dropped
    }
}

/// Result of [`CacheArray::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome<X> {
    /// The line was already present; nothing changed.
    AlreadyPresent,
    /// The line was inserted into a free way.
    Inserted,
    /// The line was inserted; the LRU way's previous occupant is returned
    /// so the caller can write back owned words or recall ownership.
    Evicted(CacheLine<X>),
}

/// A set-associative, true-LRU cache array.
///
/// # Examples
///
/// ```
/// use gsim_mem::{CacheArray, CacheGeometry, WordState};
/// use gsim_types::{LineAddr, WordMask};
///
/// let mut c: CacheArray<()> = CacheArray::new(CacheGeometry::l1());
/// c.insert(LineAddr(7));
/// let line = c.lookup(LineAddr(7)).unwrap();
/// line.fill(WordMask::single(3), &[9; 16], WordState::Valid);
/// assert!(c.lookup(LineAddr(7)).unwrap().word(3).readable());
/// assert_eq!(c.lookup(LineAddr(7)).unwrap().data[3], 9);
/// ```
#[derive(Debug)]
pub struct CacheArray<X> {
    geometry: CacheGeometry,
    sets: Vec<Vec<CacheLine<X>>>,
    next_stamp: u64,
}

impl<X: Default> CacheArray<X> {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        CacheArray {
            geometry,
            sets: (0..sets).map(|_| Vec::new()).collect(),
            next_stamp: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 % self.sets.len() as u64) as usize
    }

    /// Looks up a line, updating LRU on hit.
    #[inline]
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut CacheLine<X>> {
        let si = self.set_index(line);
        let stamp = {
            self.next_stamp += 1;
            self.next_stamp
        };
        match self.sets[si].iter_mut().find(|l| l.tag == line) {
            Some(l) => {
                l.lru_stamp = stamp;
                Some(l)
            }
            None => None,
        }
    }

    /// Looks up a line without touching LRU.
    #[inline]
    pub fn peek(&self, line: LineAddr) -> Option<&CacheLine<X>> {
        let si = self.set_index(line);
        self.sets[si].iter().find(|l| l.tag == line)
    }

    /// Whether the line is present.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Ensures `line` has a way in its set (with all words Invalid when
    /// newly inserted), evicting the LRU occupant if the set is full.
    ///
    /// Victim selection prefers lines with no owned words so that owned
    /// (registered/dirty) data stays resident as long as possible; when
    /// every candidate owns data, the overall LRU line is evicted and the
    /// caller must write its owned words back.
    pub fn insert(&mut self, line: LineAddr) -> InsertOutcome<X> {
        let si = self.set_index(line);
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        let set = &mut self.sets[si];
        if let Some(l) = set.iter_mut().find(|l| l.tag == line) {
            l.lru_stamp = stamp;
            return InsertOutcome::AlreadyPresent;
        }
        let fresh = CacheLine {
            tag: line,
            valid: WordMask::empty(),
            owned: WordMask::empty(),
            data: [0; WORDS_PER_LINE],
            extra: X::default(),
            lru_stamp: stamp,
        };
        if set.len() < self.geometry.ways {
            set.push(fresh);
            return InsertOutcome::Inserted;
        }
        // Prefer the LRU line without owned words; fall back to pure LRU.
        let victim_idx = set
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.any_owned())
            .min_by_key(|(_, l)| l.lru_stamp)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru_stamp)
                    .map(|(i, _)| i)
                    .expect("set is full, so non-empty")
            });
        let victim = std::mem::replace(&mut set[victim_idx], fresh);
        InsertOutcome::Evicted(victim)
    }

    /// Removes a line from the cache, returning it.
    pub fn remove(&mut self, line: LineAddr) -> Option<CacheLine<X>> {
        let si = self.set_index(line);
        let set = &mut self.sets[si];
        let idx = set.iter().position(|l| l.tag == line)?;
        Some(set.swap_remove(idx))
    }

    /// Applies `f` to every resident line (flash operations: GPU full-
    /// cache invalidation, DeNovo selective self-invalidation).
    pub fn for_each_line_mut(&mut self, mut f: impl FnMut(&mut CacheLine<X>)) {
        for set in &mut self.sets {
            for l in set.iter_mut() {
                f(l);
            }
        }
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &CacheLine<X>> {
        self.sets.iter().flat_map(|s| s.iter())
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray<u8> {
        // 2 sets x 2 ways.
        CacheArray::new(CacheGeometry {
            size_bytes: 4 * gsim_types::LINE_BYTES,
            ways: 2,
        })
    }

    #[test]
    fn geometry_math() {
        assert_eq!(CacheGeometry::l1().sets(), 64);
        assert_eq!(CacheGeometry::l2_bank().sets(), 256);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn bad_geometry_panics() {
        CacheGeometry {
            size_bytes: 96,
            ways: 3,
        }
        .sets();
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c = small();
        assert!(matches!(c.insert(LineAddr(0)), InsertOutcome::Inserted));
        assert!(matches!(
            c.insert(LineAddr(0)),
            InsertOutcome::AlreadyPresent
        ));
        assert!(c.contains(LineAddr(0)));
        assert_eq!(c.occupancy(), 1);
        let removed = c.remove(LineAddr(0)).unwrap();
        assert_eq!(removed.tag, LineAddr(0));
        assert!(!c.contains(LineAddr(0)));
        assert!(c.remove(LineAddr(0)).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Lines 0, 2, 4 map to set 0 (2 sets).
        c.insert(LineAddr(0));
        c.insert(LineAddr(2));
        c.lookup(LineAddr(0)); // make 2 the LRU
        match c.insert(LineAddr(4)) {
            InsertOutcome::Evicted(v) => assert_eq!(v.tag, LineAddr(2)),
            o => panic!("expected eviction, got {o:?}"),
        }
        assert!(c.contains(LineAddr(0)) && c.contains(LineAddr(4)));
    }

    #[test]
    fn eviction_prefers_unowned_victims() {
        let mut c = small();
        c.insert(LineAddr(0));
        c.lookup(LineAddr(0)).unwrap().set_word(0, WordState::Owned);
        c.insert(LineAddr(2)); // 0 is older but owned
        match c.insert(LineAddr(4)) {
            InsertOutcome::Evicted(v) => assert_eq!(v.tag, LineAddr(2)),
            o => panic!("expected eviction, got {o:?}"),
        }
        // When everything is owned, pure LRU applies.
        c.lookup(LineAddr(4)).unwrap().set_word(0, WordState::Owned);
        match c.insert(LineAddr(6)) {
            InsertOutcome::Evicted(v) => assert_eq!(v.tag, LineAddr(0)),
            o => panic!("expected eviction, got {o:?}"),
        }
    }

    #[test]
    fn masks_and_fill() {
        let mut c = small();
        c.insert(LineAddr(1));
        let l = c.lookup(LineAddr(1)).unwrap();
        assert!(!l.any_readable());
        l.fill(
            WordMask::single(2) | WordMask::single(5),
            &[7; WORDS_PER_LINE],
            WordState::Valid,
        );
        l.set_word(5, WordState::Owned);
        assert_eq!(l.mask_in(WordState::Valid).iter().collect::<Vec<_>>(), [2]);
        assert_eq!(l.mask_in(WordState::Owned).iter().collect::<Vec<_>>(), [5]);
        assert_eq!(l.readable_mask().iter().collect::<Vec<_>>(), vec![2, 5]);
        assert!(l.any_owned());
    }

    #[test]
    fn flash_operation_via_for_each() {
        let mut c = small();
        for i in 0..4u64 {
            c.insert(LineAddr(i));
            c.lookup(LineAddr(i)).unwrap().set_word(0, WordState::Valid);
        }
        let mut invalidated = 0;
        c.for_each_line_mut(|l| {
            let v = l.mask_in(WordState::Valid);
            invalidated += v.count();
            l.set_mask(v, WordState::Invalid);
        });
        assert_eq!(invalidated, 4);
        assert!(c.iter().all(|l| !l.any_readable()));
    }

    mod properties {
        use super::*;
        use gsim_types::Rng64;

        /// Random insertion sequences (seeded, deterministic — the
        /// offline replacement for the old proptest generators).
        fn random_sequences(seed: u64, f: impl Fn(&mut CacheArray<u8>, LineAddr)) {
            let mut rng = Rng64::seed_from_u64(seed);
            for _ in 0..64 {
                let mut c = small();
                let n = rng.gen_usize(1, 200);
                for _ in 0..n {
                    f(&mut c, LineAddr(rng.gen_u64(0, 64)));
                }
            }
        }

        #[test]
        fn occupancy_never_exceeds_capacity() {
            random_sequences(0xcac4e, |c, l| {
                c.insert(l);
                assert!(c.occupancy() <= 4);
            });
        }

        #[test]
        fn inserted_line_is_resident() {
            random_sequences(0xcac4f, |c, l| {
                c.insert(l);
                assert!(c.contains(l));
            });
        }
    }
}
