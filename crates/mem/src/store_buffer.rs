//! The coalescing store buffer (paper Table 3: 256 entries per L1).
//!
//! GPU coherence buffers writethroughs here and coalesces writes to the
//! same line "until the next release (or until the buffer is full)"
//! (paper §1). DeNovo uses the same structure to hold store values while
//! their ownership (registration) requests are in flight. Both behaviours
//! the paper highlights fall out of this module:
//!
//! * **bursty release traffic** — [`StoreBuffer::drain`] hands back every
//!   entry at once for the release-time flush;
//! * **overflow** — when a new line arrives with the buffer full, the
//!   oldest entry is evicted ([`StoreOutcome::Overflow`]) and must be
//!   written through immediately, defeating later coalescing (the LavaMD
//!   effect of paper §6.2.1).

use gsim_types::{FxHashMap, LineAddr, Value, WordAddr, WordMask, WORDS_PER_LINE};
use std::collections::VecDeque;

/// One store-buffer entry: the dirty words of one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SbEntry {
    /// The line these words belong to.
    pub line: LineAddr,
    /// Which words are dirty.
    pub mask: WordMask,
    /// The dirty values (meaningful where `mask` is set).
    pub data: [Value; WORDS_PER_LINE],
}

/// Result of inserting a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Merged into an existing entry for the same line.
    Coalesced,
    /// Allocated a fresh entry.
    NewEntry,
    /// Allocated a fresh entry by evicting the oldest entry, which the
    /// caller must write through / register immediately.
    Overflow(SbEntry),
}

/// A FIFO, coalescing store buffer.
///
/// # Examples
///
/// ```
/// use gsim_mem::{StoreBuffer, StoreOutcome};
/// use gsim_types::WordAddr;
///
/// let mut sb = StoreBuffer::new(2);
/// assert_eq!(sb.write(WordAddr(0), 1), StoreOutcome::NewEntry);
/// assert_eq!(sb.write(WordAddr(1), 2), StoreOutcome::Coalesced); // same line
/// assert_eq!(sb.lookup(WordAddr(1)), Some(2));
/// assert_eq!(sb.write(WordAddr(100), 3), StoreOutcome::NewEntry);
/// // Third distinct line: the oldest entry (line 0) overflows out.
/// match sb.write(WordAddr(200), 4) {
///     StoreOutcome::Overflow(e) => assert_eq!(e.mask.count(), 2),
///     o => panic!("expected overflow, got {o:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct StoreBuffer {
    entries: FxHashMap<LineAddr, SbEntry>,
    fifo: VecDeque<LineAddr>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a store buffer holding up to `capacity` line entries.
    pub fn new(capacity: usize) -> Self {
        StoreBuffer {
            entries: FxHashMap::default(),
            fifo: VecDeque::new(),
            capacity,
        }
    }

    /// The buffered lines and their dirty word masks, oldest first (the
    /// quiesce audit names leaked words with this).
    pub fn pending_entries(&self) -> Vec<(LineAddr, WordMask)> {
        self.fifo
            .iter()
            .filter_map(|l| self.entries.get(l).map(|e| (e.line, e.mask)))
            .collect()
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity in line entries (pairs with
    /// [`len`](Self::len) for occupancy reporting).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffers a store, coalescing with an existing entry for the same
    /// line. On overflow the oldest entry is evicted and returned.
    pub fn write(&mut self, word: WordAddr, value: Value) -> StoreOutcome {
        let line = word.line();
        let idx = word.index_in_line();
        if let Some(e) = self.entries.get_mut(&line) {
            e.mask.insert(idx);
            e.data[idx] = value;
            return StoreOutcome::Coalesced;
        }
        let overflow = if self.entries.len() >= self.capacity {
            self.pop_oldest()
        } else {
            None
        };
        let mut entry = SbEntry {
            line,
            mask: WordMask::empty(),
            data: [0; WORDS_PER_LINE],
        };
        entry.mask.insert(idx);
        entry.data[idx] = value;
        self.entries.insert(line, entry);
        self.fifo.push_back(line);
        match overflow {
            Some(e) => StoreOutcome::Overflow(e),
            None => StoreOutcome::NewEntry,
        }
    }

    /// Store-to-load forwarding: the buffered value for `word`, if any.
    pub fn lookup(&self, word: WordAddr) -> Option<Value> {
        let e = self.entries.get(&word.line())?;
        e.mask
            .contains(word.index_in_line())
            .then(|| e.data[word.index_in_line()])
    }

    /// Removes the oldest entry (skipping lines already cleared by
    /// registration completion).
    pub fn pop_oldest(&mut self) -> Option<SbEntry> {
        while let Some(line) = self.fifo.pop_front() {
            if let Some(e) = self.entries.remove(&line) {
                return Some(e);
            }
        }
        None
    }

    /// Clears the given words of `line` (DeNovo: their registration was
    /// granted and the values now live in the L1 as owned words). Drops
    /// the entry when no dirty words remain.
    pub fn clear_words(&mut self, line: LineAddr, mask: WordMask) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.mask = e.mask & !mask;
            if e.mask.is_empty() {
                self.entries.remove(&line);
                // The fifo slot goes stale and is skipped on pop.
            }
        }
    }

    /// Drains every entry, oldest first — the release-time flush whose
    /// burstiness the paper charges against GPU coherence.
    pub fn drain(&mut self) -> Vec<SbEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        self.drain_with(|e| out.push(e));
        out
    }

    /// As [`drain`](Self::drain), feeding entries to a callback instead
    /// of collecting them — the release-path flush runs on every
    /// release-ordered sync operation, so it must not allocate.
    pub fn drain_with(&mut self, mut f: impl FnMut(SbEntry)) {
        while let Some(e) = self.pop_oldest() {
            f(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_same_line() {
        let mut sb = StoreBuffer::new(4);
        assert_eq!(sb.write(WordAddr(16), 1), StoreOutcome::NewEntry);
        assert_eq!(sb.write(WordAddr(17), 2), StoreOutcome::Coalesced);
        assert_eq!(sb.write(WordAddr(16), 3), StoreOutcome::Coalesced); // overwrite
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.lookup(WordAddr(16)), Some(3));
        assert_eq!(sb.lookup(WordAddr(17)), Some(2));
        assert_eq!(sb.lookup(WordAddr(18)), None);
        assert_eq!(sb.lookup(WordAddr(999)), None);
    }

    #[test]
    fn overflow_evicts_fifo_order() {
        let mut sb = StoreBuffer::new(2);
        sb.write(WordAddr(0), 1); // line 0
        sb.write(WordAddr(16), 2); // line 1
        match sb.write(WordAddr(32), 3) {
            StoreOutcome::Overflow(e) => {
                assert_eq!(e.line, LineAddr(0));
                assert_eq!(e.data[0], 1);
            }
            o => panic!("expected overflow of line 0, got {o:?}"),
        }
        // Oldest surviving entry is now line 1.
        assert_eq!(sb.pop_oldest().unwrap().line, LineAddr(1));
    }

    #[test]
    fn coalescing_to_old_entry_does_not_overflow() {
        let mut sb = StoreBuffer::new(2);
        sb.write(WordAddr(0), 1);
        sb.write(WordAddr(16), 2);
        // Buffer is full but line 0 is resident: coalesce, no overflow.
        assert_eq!(sb.write(WordAddr(1), 9), StoreOutcome::Coalesced);
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn clear_words_drops_empty_entries() {
        let mut sb = StoreBuffer::new(4);
        sb.write(WordAddr(0), 1);
        sb.write(WordAddr(1), 2);
        sb.clear_words(LineAddr(0), WordMask::single(0));
        assert_eq!(sb.lookup(WordAddr(0)), None);
        assert_eq!(sb.lookup(WordAddr(1)), Some(2));
        sb.clear_words(LineAddr(0), WordMask::single(1));
        assert!(sb.is_empty());
        // Stale fifo slot is skipped.
        assert!(sb.pop_oldest().is_none());
    }

    #[test]
    fn drain_is_oldest_first_and_empties() {
        let mut sb = StoreBuffer::new(8);
        for i in 0..5u64 {
            sb.write(LineAddr(i).word(0), i as Value);
        }
        let drained = sb.drain();
        assert_eq!(drained.len(), 5);
        assert!(drained.windows(2).all(|w| w[0].line.0 < w[1].line.0));
        assert!(sb.is_empty());
        assert!(sb.drain().is_empty());
    }

    mod properties {
        use super::*;
        use gsim_types::Rng64;

        #[test]
        fn never_exceeds_capacity() {
            let mut rng = Rng64::seed_from_u64(0x5b01);
            for _ in 0..64 {
                let mut sb = StoreBuffer::new(16);
                for _ in 0..rng.gen_usize(1, 300) {
                    sb.write(WordAddr(rng.gen_u64(0, 512)), rng.gen_u32(0, 100));
                    assert!(sb.len() <= 16);
                }
            }
        }

        #[test]
        fn forwarding_returns_last_write() {
            let mut rng = Rng64::seed_from_u64(0x5b02);
            for _ in 0..64 {
                // Capacity large enough that nothing overflows: the buffer
                // must forward exactly the last written value per word.
                let mut sb = StoreBuffer::new(64);
                let mut model = std::collections::HashMap::new();
                for _ in 0..rng.gen_usize(1, 100) {
                    let (w, v) = (rng.gen_u64(0, 64), rng.gen_u32(0, 100));
                    sb.write(WordAddr(w), v);
                    model.insert(w, v);
                }
                for (w, v) in model {
                    assert_eq!(sb.lookup(WordAddr(w)), Some(v));
                }
            }
        }

        /// Applies every dirty word of `e` to a word->value map, the way
        /// a writethrough (overflow) or release flush reaches memory.
        fn apply(mem: &mut std::collections::HashMap<u64, Value>, e: &SbEntry) {
            for i in 0..WORDS_PER_LINE {
                if e.mask.contains(i) {
                    mem.insert(e.line.word(i).0, e.data[i]);
                }
            }
        }

        /// Coalescing never loses a word: under random writes at random
        /// (small) capacities, every written word reaches "memory" with
        /// its final value — either flushed by an overflow eviction or
        /// handed back by the release-time drain.
        #[test]
        fn no_word_lost_through_overflow_and_drain() {
            let mut rng = Rng64::seed_from_u64(0x5b03);
            for _ in 0..48 {
                let mut sb = StoreBuffer::new(rng.gen_usize(1, 12));
                let mut memory = std::collections::HashMap::new();
                let mut written = std::collections::HashMap::new();
                for _ in 0..rng.gen_usize(1, 400) {
                    let (w, v) = (rng.gen_u64(0, 256), rng.gen_u32(1, 1_000_000));
                    if let StoreOutcome::Overflow(e) = sb.write(WordAddr(w), v) {
                        apply(&mut memory, &e);
                    }
                    written.insert(w, v);
                }
                for e in sb.drain() {
                    apply(&mut memory, &e);
                }
                assert_eq!(memory, written);
            }
        }

        /// The release-fence drain respects FIFO order: entries come
        /// back in first-write order, with overflow evictions always
        /// taking the oldest entry (re-written lines move to the back).
        #[test]
        fn drain_order_is_first_write_order() {
            let mut rng = Rng64::seed_from_u64(0x5b04);
            for _ in 0..48 {
                let mut sb = StoreBuffer::new(rng.gen_usize(1, 8));
                let mut order: Vec<u64> = Vec::new(); // resident lines, oldest first
                for _ in 0..rng.gen_usize(1, 200) {
                    let w = rng.gen_u64(0, 128);
                    let line = WordAddr(w).line().0;
                    let resident = order.contains(&line);
                    match sb.write(WordAddr(w), 1) {
                        StoreOutcome::Coalesced => assert!(resident),
                        StoreOutcome::NewEntry => {
                            assert!(!resident);
                            order.push(line);
                        }
                        StoreOutcome::Overflow(e) => {
                            assert!(!resident);
                            assert_eq!(e.line.0, order.remove(0), "evict the oldest");
                            order.push(line);
                        }
                    }
                }
                let drained: Vec<u64> = sb.drain().iter().map(|e| e.line.0).collect();
                assert_eq!(drained, order);
            }
        }

        /// Registration completions (`clear_words`) interleaved with
        /// writes: the drain hands back exactly the still-dirty words
        /// with their last values — cleared words never resurface.
        #[test]
        fn cleared_words_never_drain() {
            let mut rng = Rng64::seed_from_u64(0x5b05);
            for _ in 0..48 {
                let mut sb = StoreBuffer::new(64); // no overflow: isolates clearing
                let mut model = std::collections::HashMap::new();
                for _ in 0..rng.gen_usize(1, 300) {
                    let w = rng.gen_u64(0, 128);
                    if rng.gen_bool() {
                        let v = rng.gen_u32(1, 1000);
                        sb.write(WordAddr(w), v);
                        model.insert(w, v);
                    } else {
                        let word = WordAddr(w);
                        sb.clear_words(word.line(), WordMask::single(word.index_in_line()));
                        model.remove(&w);
                    }
                }
                let mut drained = std::collections::HashMap::new();
                for e in sb.drain() {
                    apply(&mut drained, &e);
                }
                assert_eq!(drained, model);
            }
        }
    }
}
