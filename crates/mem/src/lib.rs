#![warn(missing_docs)]

//! Memory structures for the `gpu-denovo` simulator.
//!
//! This crate provides the protocol-agnostic memory hardware the coherence
//! controllers of `gsim-protocol` are built from:
//!
//! * [`cache`] — set-associative, LRU cache arrays with *word-granularity*
//!   coherence state (DeNovo keeps 2 state bits per word; GPU coherence
//!   uses the same array with only the Valid/Owned(dirty) distinction).
//! * [`mshr`] — miss status holding registers with same-line coalescing
//!   and the queued-forward slots that realize DeNovoSync0's distributed
//!   queue.
//! * [`store_buffer`] — the 256-entry coalescing store buffer next to each
//!   L1 (paper Table 3), whose release-time flush bursts and overflow
//!   behaviour drive several of the paper's results (e.g. LavaMD).
//! * [`memory`] — the flat backing [`MemoryImage`] (functional state)
//!   and the banked [`Dram`] timing model.

pub mod cache;
pub mod memory;
pub mod mshr;
pub mod store_buffer;

pub use cache::{CacheArray, CacheGeometry, CacheLine, InsertOutcome, WordState};
pub use memory::{Dram, DramConfig, MemoryImage};
pub use mshr::{MshrEntry, MshrFile};
pub use store_buffer::{SbEntry, StoreBuffer, StoreOutcome};
