//! Backing memory: the flat functional [`MemoryImage`] and the banked
//! [`Dram`] timing model.
//!
//! The simulator is *functional + timing*: every load returns a real value
//! and every workload verifies its final memory contents, so a coherence
//! bug that violates SC-for-DRF breaks the run, not just the numbers. The
//! `MemoryImage` is the ground truth behind the shared L2 — an L2 bank
//! miss reads a line from here, an L2 eviction writes one back.
//!
//! Timing is separate: [`Dram::access`] models per-bank busy time on top
//! of a fixed access latency, calibrated (together with the mesh and L2
//! latencies) so end-to-end memory latency lands in Table 3's 197-261
//! cycle range.

use gsim_types::{Addr, Cycle, LineAddr, Value, WordAddr, WordMask, WORDS_PER_LINE};
use std::collections::HashMap;

/// A line's worth of values.
pub type Line = [Value; WORDS_PER_LINE];

/// The flat, functional backing store of the unified address space.
///
/// Sparse: untouched lines read as zero, like freshly allocated device
/// memory in the modelled system.
///
/// # Examples
///
/// ```
/// use gsim_mem::MemoryImage;
/// use gsim_types::{Addr, WordAddr};
///
/// let mut mem = MemoryImage::new();
/// mem.write_word(WordAddr(17), 99);
/// assert_eq!(mem.read_word(WordAddr(17)), 99);
/// assert_eq!(mem.read_word(WordAddr(18)), 0); // untouched reads as zero
/// mem.write_u32_slice(Addr(0x1000), &[1, 2, 3]);
/// assert_eq!(mem.read_u32_slice(Addr(0x1000), 3), vec![1, 2, 3]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct MemoryImage {
    lines: HashMap<LineAddr, Line>,
}

impl MemoryImage {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one word.
    pub fn read_word(&self, word: WordAddr) -> Value {
        self.lines
            .get(&word.line())
            .map(|l| l[word.index_in_line()])
            .unwrap_or(0)
    }

    /// Writes one word.
    pub fn write_word(&mut self, word: WordAddr, value: Value) {
        self.lines.entry(word.line()).or_insert([0; WORDS_PER_LINE])[word.index_in_line()] = value;
    }

    /// Reads a whole line.
    pub fn read_line(&self, line: LineAddr) -> Line {
        self.lines
            .get(&line)
            .copied()
            .unwrap_or([0; WORDS_PER_LINE])
    }

    /// Writes the masked words of a line.
    pub fn write_line(&mut self, line: LineAddr, mask: WordMask, data: &Line) {
        let l = self.lines.entry(line).or_insert([0; WORDS_PER_LINE]);
        for i in mask.iter() {
            l[i] = data[i];
        }
    }

    /// Host (CPU-side, untimed) bulk write of consecutive `u32` values
    /// starting at a word-aligned byte address — how workloads initialize
    /// their inputs, mirroring the paper's functional CPU.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned.
    pub fn write_u32_slice(&mut self, base: Addr, values: &[Value]) {
        assert!(base.is_word_aligned(), "unaligned base {base}");
        let w0 = base.word();
        for (i, &v) in values.iter().enumerate() {
            self.write_word(WordAddr(w0.0 + i as u64), v);
        }
    }

    /// Host bulk read of `count` consecutive `u32` values — how workload
    /// verifiers inspect the final memory state.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned.
    pub fn read_u32_slice(&self, base: Addr, count: usize) -> Vec<Value> {
        assert!(base.is_word_aligned(), "unaligned base {base}");
        let w0 = base.word();
        (0..count)
            .map(|i| self.read_word(WordAddr(w0.0 + i as u64)))
            .collect()
    }

    /// Number of lines ever touched.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }
}

/// DRAM timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles from request acceptance to data availability.
    pub latency: Cycle,
    /// Number of independent DRAM banks.
    pub banks: usize,
    /// Cycles a bank stays busy per access (row activation + transfer).
    pub busy: Cycle,
}

impl Default for DramConfig {
    fn default() -> Self {
        // Calibrated with the mesh + L2 latencies so end-to-end memory
        // accesses land in Table 3's 197-261 cycle range.
        DramConfig {
            latency: 170,
            banks: 16,
            busy: 8,
        }
    }
}

/// The DRAM timing model: fixed access latency plus per-bank serialization.
///
/// Functional data lives in [`MemoryImage`]; `Dram` only answers *when* a
/// line access completes.
///
/// # Examples
///
/// ```
/// use gsim_mem::{Dram, DramConfig};
/// use gsim_types::LineAddr;
///
/// let mut dram = Dram::new(DramConfig::default());
/// let t1 = dram.access(0, LineAddr(0));
/// let t2 = dram.access(0, LineAddr(16)); // same bank: serialized
/// assert!(t2 > t1);
/// let t3 = dram.access(0, LineAddr(1)); // different bank: unaffected
/// assert_eq!(t3, t1);
/// ```
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    bank_free: Vec<Cycle>,
    accesses: u64,
}

impl Dram {
    /// Creates a DRAM model with the given configuration.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            bank_free: vec![0; config.banks],
            config,
            accesses: 0,
        }
    }

    /// The DRAM configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Performs a (read or write) access to `line` at cycle `now`,
    /// returning the completion cycle. The line's bank is busy for
    /// [`DramConfig::busy`] cycles.
    pub fn access(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        self.accesses += 1;
        let bank = (line.0 % self.config.banks as u64) as usize;
        let start = now.max(self.bank_free[bank]);
        self.bank_free[bank] = start + self.config.busy;
        start + self.config.latency
    }

    /// Resets timing state (for reuse between independent simulations).
    pub fn reset(&mut self) {
        self.bank_free.fill(0);
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let mem = MemoryImage::new();
        assert_eq!(mem.read_word(WordAddr(12345)), 0);
        assert_eq!(mem.read_line(LineAddr(7)), [0; WORDS_PER_LINE]);
        assert_eq!(mem.touched_lines(), 0);
    }

    #[test]
    fn word_round_trip() {
        let mut mem = MemoryImage::new();
        mem.write_word(WordAddr(5), 42);
        mem.write_word(WordAddr(5 + WORDS_PER_LINE as u64), 43);
        assert_eq!(mem.read_word(WordAddr(5)), 42);
        assert_eq!(mem.read_word(WordAddr(5 + WORDS_PER_LINE as u64)), 43);
        assert_eq!(mem.touched_lines(), 2);
    }

    #[test]
    fn masked_line_write() {
        let mut mem = MemoryImage::new();
        mem.write_word(WordAddr(0), 7);
        let data = [9; WORDS_PER_LINE];
        mem.write_line(LineAddr(0), WordMask::single(3), &data);
        assert_eq!(mem.read_word(WordAddr(3)), 9);
        assert_eq!(mem.read_word(WordAddr(0)), 7, "unmasked word untouched");
    }

    #[test]
    fn slice_helpers_cross_lines() {
        let mut mem = MemoryImage::new();
        let vals: Vec<Value> = (0..40).collect();
        mem.write_u32_slice(Addr(60), &vals); // straddles a line boundary
        assert_eq!(mem.read_u32_slice(Addr(60), 40), vals);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_slice_panics() {
        let mem = MemoryImage::new();
        let _ = mem.read_u32_slice(Addr(2), 1);
    }

    #[test]
    fn dram_bank_serialization() {
        let cfg = DramConfig {
            latency: 100,
            banks: 4,
            busy: 10,
        };
        let mut d = Dram::new(cfg);
        assert_eq!(d.access(0, LineAddr(0)), 100);
        assert_eq!(d.access(0, LineAddr(4)), 110, "same bank waits");
        assert_eq!(d.access(0, LineAddr(1)), 100, "other bank free");
        assert_eq!(d.accesses(), 3);
        d.reset();
        assert_eq!(d.access(0, LineAddr(0)), 100);
        assert_eq!(d.accesses(), 1);
    }

    #[test]
    fn dram_idle_bank_does_not_backdate() {
        let mut d = Dram::new(DramConfig::default());
        let t = d.access(1000, LineAddr(0));
        assert_eq!(t, 1000 + DramConfig::default().latency);
    }

    mod properties {
        use super::*;
        use gsim_types::Rng64;

        #[test]
        fn image_is_a_map() {
            let mut rng = Rng64::seed_from_u64(0x3e3);
            for _ in 0..64 {
                let mut mem = MemoryImage::new();
                let mut model = HashMap::new();
                for _ in 0..rng.gen_usize(1, 200) {
                    let (w, v) = (rng.gen_u64(0, 256), rng.gen_u32(0, 1000));
                    mem.write_word(WordAddr(w), v);
                    model.insert(w, v);
                }
                for (w, v) in model {
                    assert_eq!(mem.read_word(WordAddr(w)), v);
                }
            }
        }

        #[test]
        fn dram_completion_monotone_per_bank() {
            let mut rng = Rng64::seed_from_u64(0xd4a3);
            for _ in 0..64 {
                let mut d = Dram::new(DramConfig::default());
                let mut times: Vec<u64> = (0..rng.gen_usize(1, 50))
                    .map(|_| rng.gen_u64(0, 10_000))
                    .collect();
                times.sort_unstable();
                let mut last = 0;
                for t in times {
                    let done = d.access(t, LineAddr(0));
                    assert!(done >= t + DramConfig::default().latency);
                    assert!(done >= last);
                    last = done;
                }
            }
        }
    }
}
