//! Backing memory: the flat functional [`MemoryImage`] and the banked
//! [`Dram`] timing model.
//!
//! The simulator is *functional + timing*: every load returns a real value
//! and every workload verifies its final memory contents, so a coherence
//! bug that violates SC-for-DRF breaks the run, not just the numbers. The
//! `MemoryImage` is the ground truth behind the shared L2 — an L2 bank
//! miss reads a line from here, an L2 eviction writes one back.
//!
//! Timing is separate: [`Dram::access`] models per-bank busy time on top
//! of a fixed access latency, calibrated (together with the mesh and L2
//! latencies) so end-to-end memory latency lands in Table 3's 197-261
//! cycle range.

use gsim_types::{Addr, Cycle, FxHashMap, LineAddr, Value, WordAddr, WordMask, WORDS_PER_LINE};

/// A line's worth of values.
pub type Line = [Value; WORDS_PER_LINE];

/// Lines per page (16 KB of data per page at 64-byte lines).
const PAGE_LINES: usize = 256;
/// Log2 of [`PAGE_LINES`], for address splitting.
const PAGE_SHIFT: u32 = PAGE_LINES.trailing_zeros();
/// Pages reachable through the dense page vector. Line addresses below
/// `DENSE_PAGES * PAGE_LINES` (a 256 MB span) index the vector directly;
/// anything above falls back to a hash map so one write at a huge
/// address cannot balloon the vector.
const DENSE_PAGES: usize = 1 << 14;

/// One page of backing storage with a touched-line bitset.
///
/// Pages are zero-filled on allocation, so untouched lines inside an
/// allocated page still read as zero; the bitset only feeds the
/// [`MemoryImage::touched_lines`] footprint statistic.
#[derive(Clone)]
struct Page {
    lines: [Line; PAGE_LINES],
    touched: [u64; PAGE_LINES / 64],
}

impl Page {
    fn zeroed() -> Box<Page> {
        Box::new(Page {
            lines: [[0; WORDS_PER_LINE]; PAGE_LINES],
            touched: [0; PAGE_LINES / 64],
        })
    }

    /// Marks a line touched, returning whether it was new.
    fn touch(&mut self, slot: usize) -> bool {
        let (w, b) = (slot / 64, slot % 64);
        let new = self.touched[w] & (1 << b) == 0;
        self.touched[w] |= 1 << b;
        new
    }
}

/// The flat, functional backing store of the unified address space.
///
/// Paged: a line address splits into a page index and a slot, the page
/// index goes through a dense page vector (with a hash-map fallback for
/// far-out sparse pages), and the slot indexes a zero-filled 16 KB page
/// arena directly — no per-line hashing on the L2 miss/writeback path.
/// Untouched lines read as zero, like freshly allocated device memory
/// in the modelled system.
///
/// # Examples
///
/// ```
/// use gsim_mem::MemoryImage;
/// use gsim_types::{Addr, WordAddr};
///
/// let mut mem = MemoryImage::new();
/// mem.write_word(WordAddr(17), 99);
/// assert_eq!(mem.read_word(WordAddr(17)), 99);
/// assert_eq!(mem.read_word(WordAddr(18)), 0); // untouched reads as zero
/// mem.write_u32_slice(Addr(0x1000), &[1, 2, 3]);
/// assert_eq!(mem.read_u32_slice(Addr(0x1000), 3), vec![1, 2, 3]);
/// ```
#[derive(Default, Clone)]
pub struct MemoryImage {
    /// Dense pages: index is the page number, grown on demand.
    pages: Vec<Option<Box<Page>>>,
    /// Sparse fallback for pages at or beyond [`DENSE_PAGES`].
    high: FxHashMap<u64, Box<Page>>,
    /// Lines ever written (maintained via the per-page bitsets).
    touched: usize,
}

impl std::fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryImage")
            .field("touched_lines", &self.touched)
            .field(
                "pages",
                &(self.pages.iter().flatten().count() + self.high.len()),
            )
            .finish()
    }
}

/// Splits a line address into `(page, slot-in-page)`.
#[inline]
fn split(line: LineAddr) -> (u64, usize) {
    (line.0 >> PAGE_SHIFT, (line.0 as usize) & (PAGE_LINES - 1))
}

impl MemoryImage {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// The page holding `line`, if it was ever written.
    #[inline]
    fn page(&self, line: LineAddr) -> Option<(&Page, usize)> {
        let (page, slot) = split(line);
        let p = if page < DENSE_PAGES as u64 {
            self.pages.get(page as usize)?.as_deref()?
        } else {
            self.high.get(&page)?
        };
        Some((p, slot))
    }

    /// The page holding `line`, allocated (zero-filled) on first use.
    #[inline]
    fn page_mut(&mut self, line: LineAddr) -> (&mut Page, usize) {
        let (page, slot) = split(line);
        let p = if page < DENSE_PAGES as u64 {
            let idx = page as usize;
            if idx >= self.pages.len() {
                self.pages.resize_with(idx + 1, || None);
            }
            self.pages[idx].get_or_insert_with(Page::zeroed)
        } else {
            self.high.entry(page).or_insert_with(Page::zeroed)
        };
        (p, slot)
    }

    /// Reads one word.
    #[inline]
    pub fn read_word(&self, word: WordAddr) -> Value {
        self.page(word.line())
            .map(|(p, slot)| p.lines[slot][word.index_in_line()])
            .unwrap_or(0)
    }

    /// Writes one word.
    #[inline]
    pub fn write_word(&mut self, word: WordAddr, value: Value) {
        let (p, slot) = self.page_mut(word.line());
        let new = p.touch(slot) as usize;
        p.lines[slot][word.index_in_line()] = value;
        self.touched += new;
    }

    /// Reads a whole line.
    #[inline]
    pub fn read_line(&self, line: LineAddr) -> Line {
        self.page(line)
            .map(|(p, slot)| p.lines[slot])
            .unwrap_or([0; WORDS_PER_LINE])
    }

    /// Writes the masked words of a line.
    pub fn write_line(&mut self, line: LineAddr, mask: WordMask, data: &Line) {
        let (p, slot) = self.page_mut(line);
        let new = p.touch(slot) as usize;
        let l = &mut p.lines[slot];
        for i in mask.iter() {
            l[i] = data[i];
        }
        self.touched += new;
    }

    /// Host (CPU-side, untimed) bulk write of consecutive `u32` values
    /// starting at a word-aligned byte address — how workloads initialize
    /// their inputs, mirroring the paper's functional CPU.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned.
    pub fn write_u32_slice(&mut self, base: Addr, values: &[Value]) {
        assert!(base.is_word_aligned(), "unaligned base {base}");
        let w0 = base.word();
        for (i, &v) in values.iter().enumerate() {
            self.write_word(WordAddr(w0.0 + i as u64), v);
        }
    }

    /// Host bulk read of `count` consecutive `u32` values — how workload
    /// verifiers inspect the final memory state.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word aligned.
    pub fn read_u32_slice(&self, base: Addr, count: usize) -> Vec<Value> {
        assert!(base.is_word_aligned(), "unaligned base {base}");
        let w0 = base.word();
        (0..count)
            .map(|i| self.read_word(WordAddr(w0.0 + i as u64)))
            .collect()
    }

    /// Number of lines ever written.
    pub fn touched_lines(&self) -> usize {
        self.touched
    }

    /// Every line ever written, in ascending address order. Built on
    /// demand from the per-page bitsets — an end-of-run operation (the
    /// sharded engine merges per-shard images by copying each shard's
    /// touched lines), not a hot path.
    pub fn touched_line_addrs(&self) -> Vec<LineAddr> {
        fn scan(page: u64, p: &Page, out: &mut Vec<LineAddr>) {
            for (w, &word) in p.touched.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    out.push(LineAddr((page << PAGE_SHIFT) | (w * 64 + b) as u64));
                }
            }
        }
        let mut out = Vec::with_capacity(self.touched);
        for (i, p) in self.pages.iter().enumerate() {
            if let Some(p) = p {
                scan(i as u64, p, &mut out);
            }
        }
        let mut high: Vec<_> = self.high.iter().collect();
        high.sort_unstable_by_key(|&(&i, _)| i);
        for (&i, p) in high {
            scan(i, p, &mut out);
        }
        out
    }
}

/// DRAM timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles from request acceptance to data availability.
    pub latency: Cycle,
    /// Number of independent DRAM banks.
    pub banks: usize,
    /// Cycles a bank stays busy per access (row activation + transfer).
    pub busy: Cycle,
}

impl Default for DramConfig {
    fn default() -> Self {
        // Calibrated with the mesh + L2 latencies so end-to-end memory
        // accesses land in Table 3's 197-261 cycle range.
        DramConfig {
            latency: 170,
            banks: 16,
            busy: 8,
        }
    }
}

/// The DRAM timing model: fixed access latency plus per-bank serialization.
///
/// Functional data lives in [`MemoryImage`]; `Dram` only answers *when* a
/// line access completes.
///
/// # Examples
///
/// ```
/// use gsim_mem::{Dram, DramConfig};
/// use gsim_types::LineAddr;
///
/// let mut dram = Dram::new(DramConfig::default());
/// let t1 = dram.access(0, LineAddr(0));
/// let t2 = dram.access(0, LineAddr(16)); // same bank: serialized
/// assert!(t2 > t1);
/// let t3 = dram.access(0, LineAddr(1)); // different bank: unaffected
/// assert_eq!(t3, t1);
/// ```
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    bank_free: Vec<Cycle>,
    accesses: u64,
}

impl Dram {
    /// Creates a DRAM model with the given configuration.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            bank_free: vec![0; config.banks],
            config,
            accesses: 0,
        }
    }

    /// The DRAM configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Performs a (read or write) access to `line` at cycle `now`,
    /// returning the completion cycle. The line's bank is busy for
    /// [`DramConfig::busy`] cycles.
    pub fn access(&mut self, now: Cycle, line: LineAddr) -> Cycle {
        self.accesses += 1;
        let bank = (line.0 % self.config.banks as u64) as usize;
        let start = now.max(self.bank_free[bank]);
        self.bank_free[bank] = start + self.config.busy;
        start + self.config.latency
    }

    /// Resets timing state (for reuse between independent simulations).
    pub fn reset(&mut self) {
        self.bank_free.fill(0);
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let mem = MemoryImage::new();
        assert_eq!(mem.read_word(WordAddr(12345)), 0);
        assert_eq!(mem.read_line(LineAddr(7)), [0; WORDS_PER_LINE]);
        assert_eq!(mem.touched_lines(), 0);
    }

    #[test]
    fn word_round_trip() {
        let mut mem = MemoryImage::new();
        mem.write_word(WordAddr(5), 42);
        mem.write_word(WordAddr(5 + WORDS_PER_LINE as u64), 43);
        assert_eq!(mem.read_word(WordAddr(5)), 42);
        assert_eq!(mem.read_word(WordAddr(5 + WORDS_PER_LINE as u64)), 43);
        assert_eq!(mem.touched_lines(), 2);
    }

    #[test]
    fn masked_line_write() {
        let mut mem = MemoryImage::new();
        mem.write_word(WordAddr(0), 7);
        let data = [9; WORDS_PER_LINE];
        mem.write_line(LineAddr(0), WordMask::single(3), &data);
        assert_eq!(mem.read_word(WordAddr(3)), 9);
        assert_eq!(mem.read_word(WordAddr(0)), 7, "unmasked word untouched");
    }

    #[test]
    fn slice_helpers_cross_lines() {
        let mut mem = MemoryImage::new();
        let vals: Vec<Value> = (0..40).collect();
        mem.write_u32_slice(Addr(60), &vals); // straddles a line boundary
        assert_eq!(mem.read_u32_slice(Addr(60), 40), vals);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_slice_panics() {
        let mem = MemoryImage::new();
        let _ = mem.read_u32_slice(Addr(2), 1);
    }

    #[test]
    fn dram_bank_serialization() {
        let cfg = DramConfig {
            latency: 100,
            banks: 4,
            busy: 10,
        };
        let mut d = Dram::new(cfg);
        assert_eq!(d.access(0, LineAddr(0)), 100);
        assert_eq!(d.access(0, LineAddr(4)), 110, "same bank waits");
        assert_eq!(d.access(0, LineAddr(1)), 100, "other bank free");
        assert_eq!(d.accesses(), 3);
        d.reset();
        assert_eq!(d.access(0, LineAddr(0)), 100);
        assert_eq!(d.accesses(), 1);
    }

    #[test]
    fn dram_idle_bank_does_not_backdate() {
        let mut d = Dram::new(DramConfig::default());
        let t = d.access(1000, LineAddr(0));
        assert_eq!(t, 1000 + DramConfig::default().latency);
    }

    #[test]
    fn sparse_high_pages_fall_back_to_the_map() {
        let mut mem = MemoryImage::new();
        // Far beyond the dense page span: must not balloon the vector.
        let far = WordAddr(u64::MAX / 2);
        mem.write_word(far, 77);
        mem.write_word(WordAddr(0), 1);
        assert_eq!(mem.read_word(far), 77);
        assert_eq!(mem.read_word(WordAddr(0)), 1);
        assert_eq!(mem.read_word(WordAddr(far.0 + 1)), 0);
        assert_eq!(mem.touched_lines(), 2);
        assert!(mem.pages.len() <= 1, "high write grew the dense vector");
    }

    #[test]
    fn touched_lines_counts_unique_lines_only() {
        let mut mem = MemoryImage::new();
        mem.write_word(WordAddr(0), 1);
        mem.write_word(WordAddr(1), 2); // same line
        mem.write_line(LineAddr(0), WordMask::single(5), &[9; WORDS_PER_LINE]);
        assert_eq!(mem.touched_lines(), 1);
        mem.write_line(LineAddr(9), WordMask::full(), &[3; WORDS_PER_LINE]);
        assert_eq!(mem.touched_lines(), 2);
        let clone = mem.clone();
        assert_eq!(clone.touched_lines(), 2);
        assert_eq!(clone.read_word(WordAddr(1)), 2);
    }

    mod properties {
        use super::*;
        use gsim_types::Rng64;
        use std::collections::HashMap;

        #[test]
        fn image_is_a_map() {
            let mut rng = Rng64::seed_from_u64(0x3e3);
            for _ in 0..64 {
                let mut mem = MemoryImage::new();
                let mut model = HashMap::new();
                for _ in 0..rng.gen_usize(1, 200) {
                    let (w, v) = (rng.gen_u64(0, 256), rng.gen_u32(0, 1000));
                    mem.write_word(WordAddr(w), v);
                    model.insert(w, v);
                }
                for (w, v) in model {
                    assert_eq!(mem.read_word(WordAddr(w)), v);
                }
            }
        }

        #[test]
        fn touched_line_addrs_lists_every_written_line_sorted() {
            let mut mem = MemoryImage::new();
            assert!(mem.touched_line_addrs().is_empty());
            // Scattered writes: same line twice, a far dense page, and a
            // sparse high page beyond the dense span.
            mem.write_word(WordAddr(17), 1); // line 1
            mem.write_word(WordAddr(18), 2); // line 1 again
            mem.write_word(WordAddr(0), 3); // line 0
            mem.write_line(LineAddr(300_000), WordMask::full(), &[9; WORDS_PER_LINE]);
            let high_line = (super::DENSE_PAGES as u64) << super::PAGE_SHIFT;
            mem.write_word(WordAddr(high_line * WORDS_PER_LINE as u64 + 4), 5);
            let lines = mem.touched_line_addrs();
            assert_eq!(
                lines,
                vec![
                    LineAddr(0),
                    LineAddr(1),
                    LineAddr(300_000),
                    LineAddr(high_line)
                ]
            );
            assert_eq!(lines.len(), mem.touched_lines());
        }

        #[test]
        fn dram_completion_monotone_per_bank() {
            let mut rng = Rng64::seed_from_u64(0xd4a3);
            for _ in 0..64 {
                let mut d = Dram::new(DramConfig::default());
                let mut times: Vec<u64> = (0..rng.gen_usize(1, 50))
                    .map(|_| rng.gen_u64(0, 10_000))
                    .collect();
                times.sort_unstable();
                let mut last = 0;
                for t in times {
                    let done = d.access(t, LineAddr(0));
                    assert!(done >= t + DramConfig::default().latency);
                    assert!(done >= last);
                    last = done;
                }
            }
        }
    }
}
