//! The `gpu-denovo` command-line interface: run any Table 4 benchmark
//! under any protocol/consistency configuration and inspect the paper's
//! three metrics, with the full counter breakdown on request.
//!
//! ```text
//! gpu-denovo list
//! gpu-denovo run SPM_G --config DD --paper --detail
//! gpu-denovo compare UTS --paper
//! gpu-denovo sweep --group global --paper
//! ```

use gpu_denovo::trace::{to_chrome_json, RingRecorder, TraceHandle};
use gpu_denovo::types::MsgClass;
use gpu_denovo::{registry, ProtocolConfig, Scale, SimStats, Simulator, SystemConfig};
use std::process::ExitCode;

fn parse_config(s: &str) -> Option<ProtocolConfig> {
    ProtocolConfig::ALL
        .into_iter()
        .find(|p| p.abbrev().eq_ignore_ascii_case(s) || p.paper_name().eq_ignore_ascii_case(s))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         gpu-denovo list\n  \
         gpu-denovo run <BENCH> [--config GD|GH|DD|DD+RO|DH] [--paper] [--detail] [--hist]\n  \
         gpu-denovo compare <BENCH> [--paper]\n  \
         gpu-denovo sweep [--group nosync|global|local] [--paper]\n  \
         gpu-denovo trace <BENCH> [--config GD|GH|DD|DD+RO|DH] [--paper] --out <FILE>\n\n\
         <BENCH> is a Table 4 abbreviation (see `gpu-denovo list`).\n\
         `trace` writes a Chrome/Perfetto trace (load it at ui.perfetto.dev\n\
         or chrome://tracing)."
    );
    ExitCode::FAILURE
}

fn scale(args: &[String]) -> Scale {
    if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Tiny
    }
}

fn run_one(name: &str, p: ProtocolConfig, s: Scale) -> Result<SimStats, String> {
    let b = registry::by_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    Simulator::new(SystemConfig::micro15(p))
        .run(&(b.build)(s))
        .map_err(|e| format!("{name} under {p}: {e}"))
}

/// Ring capacity for `gpu-denovo trace`: enough for any Tiny-scale run
/// and the tail of a Paper-scale one (the drop count is reported).
const TRACE_CAPACITY: usize = 1 << 20;

fn trace_one(name: &str, p: ProtocolConfig, s: Scale) -> Result<(SimStats, TraceHandle), String> {
    let b = registry::by_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    let handle = TraceHandle::new(RingRecorder::new(TRACE_CAPACITY));
    let stats = Simulator::new(SystemConfig::micro15(p))
        .run_traced(&(b.build)(s), handle.clone())
        .map_err(|e| format!("{name} under {p}: {e}"))?;
    Ok((stats, handle))
}

fn print_row(p: ProtocolConfig, stats: &SimStats) {
    println!(
        "{:<8} {:>12} {:>14.1} {:>16} {:>10}",
        p.to_string(),
        stats.cycles,
        stats.energy.total_pj() / 1e3,
        stats.traffic.total(),
        stats
            .counts
            .l1_load_hit_rate()
            .map(|r| format!("{:.1}", r * 100.0))
            .unwrap_or_else(|| "-".into()),
    );
}

fn print_detail(stats: &SimStats) {
    let c = &stats.counts;
    println!("\n-- counters --");
    println!("instructions            {:>14}", c.instructions);
    println!("CU active cycles        {:>14}", c.cu_active_cycles);
    println!("L1 accesses             {:>14}", c.l1_accesses);
    println!(
        "L1 load hits/misses     {:>14} / {}",
        c.l1_load_hits, c.l1_load_misses
    );
    println!("L1 store hits (owned)   {:>14}", c.l1_store_hits);
    println!(
        "L1 atomics (hits)       {:>14} ({})",
        c.l1_atomics, c.l1_atomic_hits
    );
    println!(
        "L2 accesses (atomics)   {:>14} ({})",
        c.l2_accesses, c.l2_atomics
    );
    println!("scratch accesses        {:>14}", c.scratch_accesses);
    println!(
        "DRAM reads/writes       {:>14} / {}",
        c.dram_reads, c.dram_writes
    );
    println!("flash invalidations     {:>14}", c.flash_invalidations);
    println!("words invalidated       {:>14}", c.words_invalidated);
    println!(
        "SB flushes (ovf/rel)    {:>14} / {}",
        c.sb_overflow_flushes, c.sb_release_flushes
    );
    println!("registrations           {:>14}", c.registrations);
    println!(
        "reg forwards (queued)   {:>14} ({})",
        c.reg_forwards, c.reg_queued
    );
    println!("ownership writebacks    {:>14}", c.ownership_writebacks);
    println!("registry spills         {:>14}", c.registry_overflow_words);
    println!("messages sent           {:>14}", c.messages_sent);
    println!("\n-- traffic (flit crossings) --");
    for class in MsgClass::ALL {
        println!(
            "{:<8}               {:>14}",
            class.label(),
            stats.traffic.class(class)
        );
    }
    println!("\n-- energy (nJ) --");
    let e = &stats.energy;
    for (label, pj) in [
        ("GPU core+", e.core_pj),
        ("scratch", e.scratch_pj),
        ("L1 D$", e.l1_pj),
        ("L2 $", e.l2_pj),
        ("network", e.noc_pj),
    ] {
        println!("{label:<10}             {:>14.1}", pj / 1e3);
    }
}

fn header() {
    println!(
        "{:<8} {:>12} {:>14} {:>16} {:>10}",
        "config", "cycles", "energy (nJ)", "traffic (flits)", "L1 hit %"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            println!("{:<10} {:<12} Table 4 input", "name", "group");
            for b in registry::all().into_iter().chain(registry::extensions()) {
                println!(
                    "{:<10} {:<12} {}",
                    b.name,
                    format!("{:?}", b.group),
                    b.table4_input
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let config = args
                .iter()
                .position(|a| a == "--config")
                .and_then(|i| args.get(i + 1))
                .map(|s| parse_config(s))
                .unwrap_or(Some(ProtocolConfig::Dd));
            let Some(config) = config else {
                eprintln!("unknown config (one of GD, GH, DD, DD+RO, DH)");
                return ExitCode::FAILURE;
            };
            match run_one(name, config, scale(&args)) {
                Ok(stats) => {
                    header();
                    print_row(config, &stats);
                    if args.iter().any(|a| a == "--detail") {
                        print_detail(&stats);
                    }
                    if args.iter().any(|a| a == "--hist") {
                        println!("\n-- latency percentiles (cycles) --");
                        print!("{}", stats.latency);
                    }
                    println!("\nrun verified functionally.");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let config = args
                .iter()
                .position(|a| a == "--config")
                .and_then(|i| args.get(i + 1))
                .map(|s| parse_config(s))
                .unwrap_or(Some(ProtocolConfig::Dd));
            let Some(config) = config else {
                eprintln!("unknown config (one of GD, GH, DD, DD+RO, DH)");
                return ExitCode::FAILURE;
            };
            let Some(out) = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
            else {
                eprintln!("trace requires --out <FILE>");
                return ExitCode::FAILURE;
            };
            match trace_one(name, config, scale(&args)) {
                Ok((stats, handle)) => {
                    let rec = handle.recorder().expect("ring-backed handle").borrow();
                    let json = to_chrome_json(&rec);
                    if let Err(e) = std::fs::write(out, &json) {
                        eprintln!("writing {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    let mut cats: Vec<&str> =
                        rec.events().map(|(_, ev)| ev.category().label()).collect();
                    cats.sort_unstable();
                    cats.dedup();
                    println!(
                        "wrote {out}: {} events ({} dropped), {} cycles simulated",
                        rec.len(),
                        rec.dropped(),
                        stats.cycles
                    );
                    println!("categories: {}", cats.join(", "));
                    println!("open at ui.perfetto.dev or chrome://tracing.");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "compare" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            header();
            for p in ProtocolConfig::ALL {
                match run_one(name, p, scale(&args)) {
                    Ok(stats) => print_row(p, &stats),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "sweep" => {
            let group = args
                .iter()
                .position(|a| a == "--group")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str);
            let s = scale(&args);
            for b in registry::all() {
                let keep = match group {
                    None => true,
                    Some("nosync") => b.group == registry::Group::NoSync,
                    Some("global") => b.group == registry::Group::GlobalSync,
                    Some("local") => b.group == registry::Group::LocalSync,
                    Some(g) => {
                        eprintln!("unknown group {g:?} (nosync|global|local)");
                        return ExitCode::FAILURE;
                    }
                };
                if !keep {
                    continue;
                }
                println!("\n== {} ==", b.name);
                header();
                for p in ProtocolConfig::ALL {
                    match run_one(b.name, p, s) {
                        Ok(stats) => print_row(p, &stats),
                        Err(e) => {
                            eprintln!("{e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
