//! The `gpu-denovo` command-line interface: run any Table 4 benchmark
//! under any protocol/consistency configuration and inspect the paper's
//! three metrics, with the full counter breakdown on request.
//!
//! `sweep` and `matrix` execute their grids through the parallel
//! harness (`--jobs N`) with a content-addressed result cache under
//! `target/gsim-cache/` (disable with `--no-cache`); output bytes are
//! identical for any `--jobs` value.
//!
//! ```text
//! gpu-denovo list
//! gpu-denovo run SPM_G --config DD --paper --detail
//! gpu-denovo compare UTS --paper
//! gpu-denovo sweep --group global --paper --jobs 8 --out results.csv
//! gpu-denovo matrix --paper --jobs 8 --out results.json
//! gpu-denovo check
//! gpu-denovo check --bench SPM_G
//! ```
//!
//! `check` runs the conformance battery: every litmus shape under
//! `CheckLevel::Full` on every configuration (coherence invariants,
//! quiesce audits, and the happens-before race detector all armed),
//! verifies the deliberately racy negative *is* flagged, and optionally
//! puts one Table 4 benchmark under the same microscope.

use gpu_denovo::explore::{self, Budget, ExploreMode, ScheduleId};
use gpu_denovo::harness::{self, Cell, CellResult, FabricSpec, ResultCache};
use gpu_denovo::trace::{
    chrome_json_full, chrome_json_with_counters, to_chrome_json, CounterTrack, JourneySpan,
    RingRecorder, TraceHandle,
};
use gpu_denovo::types::{JsonValue, MsgClass};
use gpu_denovo::workloads::litmus;
use gpu_denovo::{
    registry, CheckLevel, FlowReport, FlowSpec, LensReport, LensSpec, ProfSpec, ProfileReport,
    ProtocolConfig, Scale, SimError, SimStats, Simulator, StallKind, SystemConfig,
};
use std::process::ExitCode;

const CONFIG_NAMES: &str = "GD, GH, DD, DD+RO, DH";
const GROUP_NAMES: &str = "nosync, global, local, extension, fabric";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         gpu-denovo list\n  \
         gpu-denovo run <BENCH> [--config GD|GH|DD|DD+RO|DH] [--paper] [--detail] [--hist]\n              \
         [--shards N] [--devices N] [--xlink-latency N]\n  \
         gpu-denovo compare <BENCH> [--paper] [--shards N] [--devices N] [--xlink-latency N]\n  \
         gpu-denovo sweep [--group nosync|global|local|extension|fabric] [--paper] [--jobs N]\n                   \
         [--shards N] [--devices N] [--xlink-latency N]\n                   \
         [--out FILE.csv|FILE.json] [--no-cache]\n  \
         gpu-denovo matrix [--paper] [--jobs N] [--shards N] [--out FILE.csv|FILE.json]\n                    \
         [--devices N] [--xlink-latency N] [--no-cache]\n  \
         gpu-denovo trace <BENCH> [--config GD|GH|DD|DD+RO|DH] [--paper] --out <FILE>\n  \
         gpu-denovo profile <BENCH> [--config GD|GH|DD|DD+RO|DH] [--paper] [--interval N]\n                     \
         [--topn N] [--json] [--out FILE.csv|FILE.json|FILE.perfetto.json]\n  \
         gpu-denovo flow <BENCH> [--config GD|GH|DD|DD+RO|DH] [--paper] [--interval N]\n                  \
         [--period N] [--topn N] [--json] [--out FILE.csv|FILE.json|FILE.perfetto.json]\n  \
         gpu-denovo lens <BENCH> [--config GD|GH|DD|DD+RO|DH] [--paper] [--topk N]\n                  \
         [--topn N] [--json] [--out FILE.csv|FILE.json|FILE.perfetto.json]\n  \
         gpu-denovo check [--bench <BENCH>] [--paper]\n  \
         gpu-denovo explore [--shape <NAME>] [--config GD|GH|DD|DD+RO|DH] [--budget N]\n                     \
         [--naive] [--json] [--replay <ID>]\n\n\
         <BENCH> is a Table 4 abbreviation (see `gpu-denovo list`).\n\
         `sweep` prints per-benchmark tables; `matrix` emits the full\n\
         benchmark x config grid as CSV (or JSON with --out FILE.json).\n\
         Both run cells on `--jobs` worker threads (0 or default = all\n\
         cores) and cache results in target/gsim-cache/; output is\n\
         byte-identical regardless of --jobs.\n\
         `--shards N` advances each run on the sharded parallel engine\n\
         (N worker threads per run; sweeps budget --jobs x --shards to\n\
         the core count). Results are byte-identical to the sequential\n\
         engine for any N; observer commands (trace/profile/flow) fall\n\
         back to sequential.\n\
         `--devices N` joins N device meshes into one fabric over a\n\
         slower inter-device link (`--xlink-latency`, default 40 cycles);\n\
         L2 homes stripe across all devices. The fabric group's XDEV_D /\n\
         XDEV_S / XPC microbenchmarks measure device- vs system-scope\n\
         synchronization on it (XPC needs --devices >= 2).\n\
         `trace` writes a Chrome/Perfetto trace (load it at ui.perfetto.dev\n\
         or chrome://tracing).\n\
         `profile` attributes every CU cycle to a stall bucket and tracks\n\
         contended lines. Without --config it compares the stall mix of all\n\
         five configurations; with --config it prints the per-CU matrix and\n\
         the hot-line table. --out exports the interval time-series (.csv:\n\
         delta CSV; .perfetto.json: counter tracks; .json: the full report).\n\
         `flow` attributes NoC traffic to directed mesh links per message\n\
         class and follows every --period'th memory request hop by hop.\n\
         Without --config it prints the cross-config traffic matrix (the\n\
         paper's writethrough-vs-registration story); with --config the\n\
         per-link table, L2 bank occupancy, and journey waterfall. --out\n\
         exports .csv (per-link table), .json (full report), or\n\
         .perfetto.json (occupancy counter tracks + journey flow spans).\n\
         `lens` follows every cache line's coherence lifecycle: what each\n\
         global acquire invalidated, how much of the drop was provably\n\
         wasted (re-fetched before overwrite), and how much reuse crossed\n\
         a synchronization boundary. Without --config it prints the\n\
         cross-config invalidation-waste table (the paper's reuse story:\n\
         GD drops and re-fetches what DD retains); with --config the\n\
         per-node ledger, the top --topn hot-line lifecycle table\n\
         (--topk bounds how many lines are tracked), and the cross-sync\n\
         reuse histograms. --out exports .csv (per-line table), .json\n\
         (full report), or .perfetto.json (acquire-drop counter tracks).\n\
         `check` runs the conformance battery (litmus shapes under\n\
         CheckLevel::Full on every config, racy negative flagged), plus\n\
         one benchmark under full checking with --bench.\n\
         `explore` enumerates every same-cycle event ordering of each\n\
         litmus shape (all shapes x all configs by default; narrow with\n\
         --shape/--config) and reports the exact reachable outcome set\n\
         with a replayable schedule id per outcome. --naive disables\n\
         DPOR pruning (ground truth); --budget caps schedules per cell\n\
         (default 4096); --replay ID re-runs one schedule (requires\n\
         --shape, and --config unless the default DD is meant)."
    );
    ExitCode::FAILURE
}

/// The value following `flag`, if the flag is present. `Err` means the
/// flag is there but its value is missing (absent or another flag).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Ok(Some(v)),
        _ => Err(format!("missing value after {flag}")),
    }
}

fn parse_config(args: &[String]) -> Result<ProtocolConfig, String> {
    let Some(s) =
        flag_value(args, "--config").map_err(|e| format!("{e} (one of {CONFIG_NAMES})"))?
    else {
        return Ok(ProtocolConfig::Dd);
    };
    ProtocolConfig::ALL
        .into_iter()
        .find(|p| p.abbrev().eq_ignore_ascii_case(s) || p.paper_name().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown config {s:?}: valid configs are {CONFIG_NAMES}"))
}

fn parse_group(args: &[String]) -> Result<Option<registry::Group>, String> {
    let Some(s) = flag_value(args, "--group").map_err(|e| format!("{e} (one of {GROUP_NAMES})"))?
    else {
        return Ok(None);
    };
    match s {
        "nosync" => Ok(Some(registry::Group::NoSync)),
        "global" => Ok(Some(registry::Group::GlobalSync)),
        "local" => Ok(Some(registry::Group::LocalSync)),
        "extension" => Ok(Some(registry::Group::Extension)),
        "fabric" => Ok(Some(registry::Group::Fabric)),
        _ => Err(format!(
            "unknown group {s:?}: valid groups are {GROUP_NAMES}"
        )),
    }
}

/// `--devices N` and `--xlink-latency N`: run on a multi-device fabric
/// (the default is the paper's single-device system, where
/// `--xlink-latency` is ignored).
fn parse_fabric(args: &[String]) -> Result<FabricSpec, String> {
    let mut fabric = FabricSpec::default();
    if let Some(v) = flag_value(args, "--devices").map_err(|e| format!("{e} (a device count)"))? {
        fabric.devices = match v.parse::<u8>() {
            Ok(n) if n > 0 => n,
            _ => {
                return Err(format!(
                    "invalid --devices value {v:?}: expected a positive device count"
                ))
            }
        };
    }
    if let Some(v) =
        flag_value(args, "--xlink-latency").map_err(|e| format!("{e} (a cycle count)"))?
    {
        fabric.xlink_latency = match v.parse() {
            Ok(n) => n,
            Err(_) => {
                return Err(format!(
                    "invalid --xlink-latency value {v:?}: expected a cycle count"
                ))
            }
        };
    }
    Ok(fabric)
}

/// `--shards N`: advance the run on the sharded parallel engine with
/// `N` worker threads. Absent means the sequential reference engine;
/// results are byte-identical either way (the `EngineKind` contract),
/// so the flag is purely a wall-clock choice.
fn parse_shards(args: &[String]) -> Result<Option<usize>, String> {
    let Some(s) = flag_value(args, "--shards").map_err(|e| format!("{e} (a shard count)"))? else {
        return Ok(None);
    };
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(format!(
            "invalid --shards value {s:?}: expected a positive shard count"
        )),
    }
}

/// `--jobs N`; absent or 0 means auto (all cores).
fn parse_jobs(args: &[String]) -> Result<usize, String> {
    let Some(s) = flag_value(args, "--jobs").map_err(|e| format!("{e} (a worker count)"))? else {
        return Ok(0);
    };
    s.parse::<usize>()
        .map_err(|_| format!("invalid --jobs value {s:?}: expected a non-negative integer"))
}

enum OutFormat {
    Csv,
    Json,
}

/// `--out FILE.csv|FILE.json`; the extension selects the format.
fn parse_out(args: &[String]) -> Result<Option<(String, OutFormat)>, String> {
    let Some(path) = flag_value(args, "--out").map_err(|e| format!("{e} (an output file)"))? else {
        return Ok(None);
    };
    let format = if path.ends_with(".csv") {
        OutFormat::Csv
    } else if path.ends_with(".json") {
        OutFormat::Json
    } else {
        return Err(format!(
            "unsupported --out file {path:?}: expected a .csv or .json extension"
        ));
    };
    Ok(Some((path.to_string(), format)))
}

fn scale(args: &[String]) -> Scale {
    if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Tiny
    }
}

fn lookup_bench(name: &str) -> Result<registry::Benchmark, String> {
    registry::by_name(name).ok_or_else(|| {
        format!("unknown benchmark {name:?}: run `gpu-denovo list` for the Table 4 names")
    })
}

fn run_one(
    name: &str,
    p: ProtocolConfig,
    s: Scale,
    shards: Option<usize>,
    fabric: FabricSpec,
) -> Result<SimStats, String> {
    let b = lookup_bench(name)?;
    let mut cfg = fabric.system(p);
    if let Some(n) = shards {
        cfg = cfg.with_shards(n);
    }
    Simulator::new(cfg)
        .run(&(b.build)(s))
        .map_err(|e| format!("{name} under {p}: {e}"))
}

/// Ring capacity for `gpu-denovo trace`: enough for any Tiny-scale run
/// and the tail of a Paper-scale one (the drop count is reported).
const TRACE_CAPACITY: usize = 1 << 20;

fn trace_one(
    name: &str,
    p: ProtocolConfig,
    s: Scale,
    fabric: FabricSpec,
) -> Result<(SimStats, TraceHandle), String> {
    let b = lookup_bench(name)?;
    let handle = TraceHandle::new(RingRecorder::new(TRACE_CAPACITY));
    let stats = Simulator::new(fabric.system(p))
        .run_traced(&(b.build)(s), handle.clone())
        .map_err(|e| format!("{name} under {p}: {e}"))?;
    Ok((stats, handle))
}

/// One profiled run: build, run, annotate hot lines with the
/// benchmark's regions, and sanity-check the report against the stats.
fn profile_one(
    b: &registry::Benchmark,
    p: ProtocolConfig,
    s: Scale,
    spec: ProfSpec,
    fabric: FabricSpec,
) -> Result<(SimStats, ProfileReport), String> {
    let mut cfg = fabric.system(p);
    cfg.prof = spec;
    let (stats, profile) = Simulator::new(cfg)
        .run_profiled(&(b.build)(s))
        .map_err(|e| format!("{} under {p}: {e}", b.name))?;
    let mut profile = profile.expect("profiling enabled");
    if let Some(regions) = b.regions {
        profile.annotate(&regions(s));
    }
    profile
        .reconcile(stats.cycles, &stats.counts)
        .map_err(|e| format!("{} under {p}: profile does not reconcile: {e}", b.name))?;
    Ok((stats, profile))
}

/// One flow-observed run: build, run, and sanity-check the report's
/// per-link sums against the aggregate traffic breakdown.
fn flow_one(
    b: &registry::Benchmark,
    p: ProtocolConfig,
    s: Scale,
    spec: FlowSpec,
    fabric: FabricSpec,
) -> Result<(SimStats, FlowReport), String> {
    let mut cfg = fabric.system(p);
    cfg.flow = spec;
    let (stats, report) = Simulator::new(cfg)
        .run_flow(&(b.build)(s))
        .map_err(|e| format!("{} under {p}: {e}", b.name))?;
    let report = report.expect("flow collection enabled");
    report
        .reconcile(&stats.traffic)
        .map_err(|e| format!("{} under {p}: flow does not reconcile: {e}", b.name))?;
    Ok((stats, report))
}

/// One lens-observed run: build, run, annotate per-line rows with the
/// benchmark's regions, and prove the ledger sums reproduce the
/// aggregate invalidation/ownership counters exactly.
fn lens_one(
    b: &registry::Benchmark,
    p: ProtocolConfig,
    s: Scale,
    spec: LensSpec,
    fabric: FabricSpec,
) -> Result<(SimStats, LensReport), String> {
    let mut cfg = fabric.system(p);
    cfg.lens = spec;
    let (stats, report) = Simulator::new(cfg)
        .run_lens(&(b.build)(s))
        .map_err(|e| format!("{} under {p}: {e}", b.name))?;
    let mut report = report.expect("lens collection enabled");
    if let Some(regions) = b.regions {
        report.annotate(&regions(s));
    }
    report
        .reconcile(&stats.counts)
        .map_err(|e| format!("{} under {p}: lens does not reconcile: {e}", b.name))?;
    Ok((stats, report))
}

/// The cross-config invalidation-waste table (the paper's reuse story
/// measured directly): how many still-valid words each configuration's
/// acquires dropped, and how many of those it provably re-fetched
/// before overwriting — pure waste, priced in flits and load-use stall
/// cycles. Expect GD ≫ DD on reuse-heavy benchmarks.
fn print_lens_compare(rows: &[(ProtocolConfig, SimStats, LensReport)]) {
    println!(
        "{:<8} {:>12} {:>9} {:>10} {:>10} {:>7} {:>10} {:>11} {:>10}",
        "config",
        "cycles",
        "acquires",
        "dropped",
        "refetched",
        "waste%",
        "re-flits",
        "stall-cyc",
        "x-sync-hit"
    );
    for (p, stats, r) in rows {
        println!(
            "{:<8} {:>12} {:>9} {:>10} {:>10} {:>6.1}% {:>10} {:>11} {:>10}",
            p.to_string(),
            stats.cycles,
            r.acquires(),
            r.words_dropped(),
            r.words_refetched(),
            r.waste_pct(),
            r.refetch_flits(),
            r.stall_cycles(),
            r.cross_sync_hits(),
        );
    }
}

/// The cross-config traffic matrix: per-class flit totals per
/// configuration (the paper's §5.2 story: DeNovo trades the GPU
/// protocols' writethrough traffic for registration traffic), plus the
/// share of link time spent queueing and the journey sample count.
fn print_flow_compare(rows: &[(ProtocolConfig, SimStats, FlowReport)]) {
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "config", "flits", "read", "regist.", "wb/wt", "atomics", "queue%", "journeys"
    );
    for (p, stats, r) in rows {
        let (mut queue, mut transit) = (0u64, 0u64);
        for l in &r.links {
            queue += l.queue_cycles;
            transit += l.transit_cycles;
        }
        let queue_pct = if queue + transit > 0 {
            100.0 * queue as f64 / (queue + transit) as f64
        } else {
            0.0
        };
        println!(
            "{:<8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7.1}% {:>9}",
            p.to_string(),
            stats.traffic.total(),
            stats.traffic.class(MsgClass::Read),
            stats.traffic.class(MsgClass::Registration),
            stats.traffic.class(MsgClass::WbWt),
            stats.traffic.class(MsgClass::Atomic),
            queue_pct,
            r.journeys.len(),
        );
    }
}

/// The cross-config comparison table: one row per configuration with
/// the acquire-spin buckets front and center (the paper's §5 story).
fn print_profile_compare(rows: &[(ProtocolConfig, SimStats, ProfileReport)]) {
    println!(
        "{:<8} {:>12} {:>7} {:>12} {:>7} {:>12} {:>7} {:>7} {:>7}",
        "config", "cycles", "issue%", "g-spin", "g-spin%", "l-spin", "l-spin%", "barr%", "idle%"
    );
    for (p, stats, r) in rows {
        let grand: u64 = r.bucket_totals().iter().sum();
        let pct = |k: StallKind| {
            if grand > 0 {
                100.0 * r.bucket(k) as f64 / grand as f64
            } else {
                0.0
            }
        };
        println!(
            "{:<8} {:>12} {:>6.1}% {:>12} {:>6.1}% {:>12} {:>6.1}% {:>6.1}% {:>6.1}%",
            p.to_string(),
            stats.cycles,
            pct(StallKind::Issue),
            r.bucket(StallKind::GlobalSpin),
            pct(StallKind::GlobalSpin),
            r.bucket(StallKind::LocalSpin),
            pct(StallKind::LocalSpin),
            pct(StallKind::Barrier),
            pct(StallKind::Idle),
        );
    }
}

fn print_row(p: ProtocolConfig, stats: &SimStats) {
    println!(
        "{:<8} {:>12} {:>14.1} {:>16} {:>10}",
        p.to_string(),
        stats.cycles,
        stats.energy.total_pj() / 1e3,
        stats.traffic.total(),
        stats
            .counts
            .l1_load_hit_rate()
            .map(|r| format!("{:.1}", r * 100.0))
            .unwrap_or_else(|| "-".into()),
    );
}

fn print_detail(stats: &SimStats) {
    let c = &stats.counts;
    println!("\n-- counters --");
    println!("instructions            {:>14}", c.instructions);
    println!("CU active cycles        {:>14}", c.cu_active_cycles);
    println!("L1 accesses             {:>14}", c.l1_accesses);
    println!(
        "L1 load hits/misses     {:>14} / {}",
        c.l1_load_hits, c.l1_load_misses
    );
    println!("L1 store hits (owned)   {:>14}", c.l1_store_hits);
    println!(
        "L1 atomics (hits)       {:>14} ({})",
        c.l1_atomics, c.l1_atomic_hits
    );
    println!(
        "L2 accesses (atomics)   {:>14} ({})",
        c.l2_accesses, c.l2_atomics
    );
    println!("scratch accesses        {:>14}", c.scratch_accesses);
    println!(
        "DRAM reads/writes       {:>14} / {}",
        c.dram_reads, c.dram_writes
    );
    println!("flash invalidations     {:>14}", c.flash_invalidations);
    println!("words invalidated       {:>14}", c.words_invalidated);
    println!(
        "SB flushes (ovf/rel)    {:>14} / {}",
        c.sb_overflow_flushes, c.sb_release_flushes
    );
    println!("registrations           {:>14}", c.registrations);
    println!(
        "reg forwards (queued)   {:>14} ({})",
        c.reg_forwards, c.reg_queued
    );
    println!("ownership writebacks    {:>14}", c.ownership_writebacks);
    println!("registry spills         {:>14}", c.registry_overflow_words);
    println!("messages sent           {:>14}", c.messages_sent);
    println!("\n-- traffic (flit crossings) --");
    for class in MsgClass::ALL {
        println!(
            "{:<8}               {:>14}",
            class.label(),
            stats.traffic.class(class)
        );
    }
    println!("\n-- energy (nJ) --");
    let e = &stats.energy;
    for (label, pj) in [
        ("GPU core+", e.core_pj),
        ("scratch", e.scratch_pj),
        ("L1 D$", e.l1_pj),
        ("L2 $", e.l2_pj),
        ("network", e.noc_pj),
    ] {
        println!("{label:<10}             {:>14.1}", pj / 1e3);
    }
}

fn header() {
    println!(
        "{:<8} {:>12} {:>14} {:>16} {:>10}",
        "config", "cycles", "energy (nJ)", "traffic (flits)", "L1 hit %"
    );
}

/// Shared tail of `sweep` and `matrix`: run the cells through the
/// harness, write `--out` if asked, report cache accounting. Returns
/// the results for command-specific presentation.
fn run_matrix(cells: &[Cell], args: &[String]) -> Result<Vec<CellResult>, String> {
    let jobs = parse_jobs(args)?;
    let shards = parse_shards(args)?;
    let fabric = parse_fabric(args)?;
    let cells: Vec<Cell> = cells.iter().map(|c| c.clone().on_fabric(fabric)).collect();
    let cells = cells.as_slice();
    let out = parse_out(args)?;
    let cache = if args.iter().any(|a| a == "--no-cache") {
        None
    } else {
        Some(
            ResultCache::open_default()
                .map_err(|e| format!("opening cache {:?}: {e}", ResultCache::default_dir()))?,
        )
    };

    // Sharded cells bring their own worker threads, so the pool width
    // is budgeted inside `run_cells_sharded`; results and cache entries
    // are byte-identical to the sequential runner either way.
    let results = match shards {
        Some(n) => harness::run_cells_sharded(cells, jobs, cache.as_ref(), n)?,
        None => harness::run_cells(cells, jobs, cache.as_ref())?,
    };

    if let Some((path, format)) = out {
        let text = match format {
            OutFormat::Csv => harness::to_csv(&results),
            OutFormat::Json => harness::to_json(&results),
        };
        std::fs::write(&path, text).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} rows to {path}", results.len());
    }
    match &cache {
        Some(c) => {
            let served = results.iter().filter(|r| r.from_cache).count();
            eprintln!(
                "cache: {served}/{} cells served from {} ({} stored this run)",
                results.len(),
                c.dir().display(),
                c.stores(),
            );
        }
        None => eprintln!("cache: disabled (--no-cache)"),
    }
    Ok(results)
}

fn fail(e: String) -> ExitCode {
    eprintln!("{e}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            println!("{:<10} {:<12} Table 4 input", "name", "group");
            for b in registry::all()
                .into_iter()
                .chain(registry::extensions())
                .chain(registry::fabric())
            {
                println!(
                    "{:<10} {:<12} {}",
                    b.name,
                    format!("{:?}", b.group),
                    b.table4_input
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let config = match parse_config(&args) {
                Ok(c) => c,
                Err(e) => return fail(e),
            };
            let shards = match parse_shards(&args) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let fabric = match parse_fabric(&args) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            match run_one(name, config, scale(&args), shards, fabric) {
                Ok(stats) => {
                    header();
                    print_row(config, &stats);
                    if args.iter().any(|a| a == "--detail") {
                        print_detail(&stats);
                    }
                    if args.iter().any(|a| a == "--hist") {
                        println!("\n-- latency percentiles (cycles) --");
                        print!("{}", stats.latency);
                    }
                    println!("\nrun verified functionally.");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "trace" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let config = match parse_config(&args) {
                Ok(c) => c,
                Err(e) => return fail(e),
            };
            let out = match flag_value(&args, "--out") {
                Ok(Some(path)) => path.to_string(),
                Ok(None) => return fail("trace requires --out <FILE>".into()),
                Err(e) => return fail(format!("{e} (an output file)")),
            };
            let fabric = match parse_fabric(&args) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            match trace_one(name, config, scale(&args), fabric) {
                Ok((stats, handle)) => {
                    let rec = handle.recorder().expect("ring-backed handle").borrow();
                    let json = to_chrome_json(&rec);
                    if let Err(e) = std::fs::write(&out, &json) {
                        return fail(format!("writing {out}: {e}"));
                    }
                    let mut cats: Vec<&str> =
                        rec.events().map(|(_, ev)| ev.category().label()).collect();
                    cats.sort_unstable();
                    cats.dedup();
                    println!(
                        "wrote {out}: {} events ({} dropped), {} cycles simulated",
                        rec.len(),
                        rec.dropped(),
                        stats.cycles
                    );
                    println!("categories: {}", cats.join(", "));
                    println!("open at ui.perfetto.dev or chrome://tracing.");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "profile" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let b = match lookup_bench(name) {
                Ok(b) => b,
                Err(e) => return fail(e),
            };
            let s = scale(&args);
            match parse_shards(&args) {
                Ok(Some(_)) => eprintln!(
                    "note: profiling observers force the sequential engine; \
                     --shards is ignored (stats are identical by contract)"
                ),
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            let mut spec = ProfSpec::on();
            match flag_value(&args, "--interval") {
                Ok(Some(v)) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => spec.interval = n,
                    _ => {
                        return fail(format!(
                            "invalid --interval value {v:?}: expected a positive cycle count"
                        ))
                    }
                },
                Ok(None) => {}
                Err(e) => return fail(format!("{e} (a cycle count)")),
            }
            let topn = match flag_value(&args, "--topn") {
                Ok(Some(v)) => match v.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        return fail(format!("invalid --topn value {v:?}: expected an integer"))
                    }
                },
                Ok(None) => 10,
                Err(e) => return fail(format!("{e} (a line count)")),
            };
            let single = args.iter().any(|a| a == "--config");
            let configs: Vec<ProtocolConfig> = if single {
                match parse_config(&args) {
                    Ok(c) => vec![c],
                    Err(e) => return fail(e),
                }
            } else {
                ProtocolConfig::ALL.to_vec()
            };
            let fabric = match parse_fabric(&args) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            let mut rows = Vec::new();
            for p in &configs {
                match profile_one(&b, *p, s, spec, fabric) {
                    Ok((stats, profile)) => rows.push((*p, stats, profile)),
                    Err(e) => return fail(e),
                }
            }
            if args.iter().any(|a| a == "--json") {
                let doc = JsonValue::Arr(
                    rows.iter()
                        .map(|(p, _, r)| {
                            JsonValue::Obj(vec![
                                ("config".into(), JsonValue::Str(p.abbrev().into())),
                                ("profile".into(), r.to_json_value()),
                            ])
                        })
                        .collect(),
                );
                println!("{doc}");
                return ExitCode::SUCCESS;
            }
            if let Some(path) = match flag_value(&args, "--out") {
                Ok(v) => v.map(str::to_string),
                Err(e) => return fail(format!("{e} (an output file)")),
            } {
                if rows.len() != 1 {
                    return fail("profile --out needs a single run: add --config".into());
                }
                let r = &rows[0].2;
                let text = if path.ends_with(".perfetto.json") {
                    let tracks: Vec<CounterTrack> = r
                        .counter_series()
                        .into_iter()
                        .map(|(name, points)| CounterTrack { name, points })
                        .collect();
                    chrome_json_with_counters(&[], 0, &tracks)
                } else if path.ends_with(".json") {
                    r.to_json()
                } else if path.ends_with(".csv") {
                    r.intervals_csv()
                } else {
                    return fail(format!(
                        "unsupported --out file {path:?}: expected .csv, .json, or .perfetto.json"
                    ));
                };
                if let Err(e) = std::fs::write(&path, text) {
                    return fail(format!("writing {path}: {e}"));
                }
                eprintln!("wrote {path} ({} interval samples)", r.samples.len());
            }
            println!(
                "profile of {name} at {s:?} scale (interval {} cycles, sketch {} lines)\n",
                spec.interval, spec.sketch_lines
            );
            if single {
                let (p, stats, r) = &rows[0];
                println!("== {p} ({} cycles) ==", stats.cycles);
                print!("{}", r.render_stalls());
                println!();
                print!("{}", r.render_cus());
                println!();
                print!("{}", r.render_hot_lines(topn));
                println!(
                    "\n{} interval samples ({} dropped); export with --out FILE.csv",
                    r.samples.len(),
                    r.dropped_samples
                );
            } else {
                print_profile_compare(&rows);
                println!(
                    "\n(g-spin/l-spin: cycles CUs spent retrying global/local acquires,\n\
                     summed over CUs; every CU cycle lands in exactly one bucket.)"
                );
            }
            ExitCode::SUCCESS
        }
        "flow" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let b = match lookup_bench(name) {
                Ok(b) => b,
                Err(e) => return fail(e),
            };
            let s = scale(&args);
            match parse_shards(&args) {
                Ok(Some(_)) => eprintln!(
                    "note: flow observers force the sequential engine; \
                     --shards is ignored (stats are identical by contract)"
                ),
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            let mut spec = FlowSpec::on();
            match flag_value(&args, "--interval") {
                Ok(Some(v)) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => spec.interval = n,
                    _ => {
                        return fail(format!(
                            "invalid --interval value {v:?}: expected a positive cycle count"
                        ))
                    }
                },
                Ok(None) => {}
                Err(e) => return fail(format!("{e} (a cycle count)")),
            }
            match flag_value(&args, "--period") {
                Ok(Some(v)) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => spec.journey_period = n,
                    _ => {
                        return fail(format!(
                            "invalid --period value {v:?}: expected a positive request count"
                        ))
                    }
                },
                Ok(None) => {}
                Err(e) => return fail(format!("{e} (a request count)")),
            }
            let topn = match flag_value(&args, "--topn") {
                Ok(Some(v)) => match v.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        return fail(format!("invalid --topn value {v:?}: expected an integer"))
                    }
                },
                Ok(None) => 10,
                Err(e) => return fail(format!("{e} (a link count)")),
            };
            let single = args.iter().any(|a| a == "--config");
            let configs: Vec<ProtocolConfig> = if single {
                match parse_config(&args) {
                    Ok(c) => vec![c],
                    Err(e) => return fail(e),
                }
            } else {
                ProtocolConfig::ALL.to_vec()
            };
            let fabric = match parse_fabric(&args) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            let mut rows = Vec::new();
            for p in &configs {
                match flow_one(&b, *p, s, spec, fabric) {
                    Ok((stats, report)) => rows.push((*p, stats, report)),
                    Err(e) => return fail(e),
                }
            }
            if args.iter().any(|a| a == "--json") {
                let doc = JsonValue::Arr(
                    rows.iter()
                        .map(|(p, _, r)| {
                            JsonValue::Obj(vec![
                                ("config".into(), JsonValue::Str(p.abbrev().into())),
                                ("flow".into(), r.to_json_value()),
                            ])
                        })
                        .collect(),
                );
                println!("{doc}");
                return ExitCode::SUCCESS;
            }
            if let Some(path) = match flag_value(&args, "--out") {
                Ok(v) => v.map(str::to_string),
                Err(e) => return fail(format!("{e} (an output file)")),
            } {
                if rows.len() != 1 {
                    return fail("flow --out needs a single run: add --config".into());
                }
                let r = &rows[0].2;
                let text = if path.ends_with(".perfetto.json") {
                    let tracks: Vec<CounterTrack> = r
                        .counter_series()
                        .into_iter()
                        .map(|(name, points)| CounterTrack { name, points })
                        .collect();
                    let spans: Vec<JourneySpan> = r.journey_spans();
                    chrome_json_full(&[], 0, &tracks, &spans)
                } else if path.ends_with(".json") {
                    r.to_json()
                } else if path.ends_with(".csv") {
                    r.links_csv()
                } else {
                    return fail(format!(
                        "unsupported --out file {path:?}: expected .csv, .json, or .perfetto.json"
                    ));
                };
                if let Err(e) = std::fs::write(&path, text) {
                    return fail(format!("writing {path}: {e}"));
                }
                eprintln!(
                    "wrote {path} ({} links, {} journeys, {} interval samples)",
                    r.links.len(),
                    r.journeys.len(),
                    r.samples.len()
                );
            }
            println!(
                "flow of {name} at {s:?} scale (interval {} cycles, journey period {})\n",
                spec.interval, spec.journey_period
            );
            if single {
                let (p, stats, r) = &rows[0];
                println!("== {p} ({} cycles) ==", stats.cycles);
                print!("{}", r.render_links(topn));
                println!();
                print!("{}", r.render_banks());
                println!();
                print!("{}", r.render_waterfall());
                println!(
                    "\n{} journeys sampled ({} dropped); {} interval samples ({} dropped);\n\
                     export with --out FILE.csv|FILE.json|FILE.perfetto.json",
                    r.journeys.len(),
                    r.dropped_journeys,
                    r.samples.len(),
                    r.dropped_samples
                );
            } else {
                print_flow_compare(&rows);
                println!(
                    "\n(per-link flit sums reconcile with the aggregate traffic breakdown\n\
                     class-for-class; queue%: share of link time spent waiting for a\n\
                     busy link rather than traversing it.)"
                );
            }
            ExitCode::SUCCESS
        }
        "lens" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let b = match lookup_bench(name) {
                Ok(b) => b,
                Err(e) => return fail(e),
            };
            let s = scale(&args);
            match parse_shards(&args) {
                Ok(Some(_)) => eprintln!(
                    "note: lens observers force the sequential engine; \
                     --shards is ignored (stats are identical by contract)"
                ),
                Ok(None) => {}
                Err(e) => return fail(e),
            }
            let mut spec = LensSpec::on();
            match flag_value(&args, "--topk") {
                Ok(Some(v)) => match v.parse::<usize>() {
                    Ok(n) if n > 0 => spec.topk = n,
                    _ => {
                        return fail(format!(
                            "invalid --topk value {v:?}: expected a positive line count"
                        ))
                    }
                },
                Ok(None) => {}
                Err(e) => return fail(format!("{e} (a line count)")),
            }
            let topn = match flag_value(&args, "--topn") {
                Ok(Some(v)) => match v.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        return fail(format!("invalid --topn value {v:?}: expected an integer"))
                    }
                },
                Ok(None) => 10,
                Err(e) => return fail(format!("{e} (a line count)")),
            };
            let single = args.iter().any(|a| a == "--config");
            let configs: Vec<ProtocolConfig> = if single {
                match parse_config(&args) {
                    Ok(c) => vec![c],
                    Err(e) => return fail(e),
                }
            } else {
                ProtocolConfig::ALL.to_vec()
            };
            let fabric = match parse_fabric(&args) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            let mut rows = Vec::new();
            for p in &configs {
                match lens_one(&b, *p, s, spec, fabric) {
                    Ok((stats, report)) => rows.push((*p, stats, report)),
                    Err(e) => return fail(e),
                }
            }
            if args.iter().any(|a| a == "--json") {
                let doc = JsonValue::Arr(
                    rows.iter()
                        .map(|(p, _, r)| {
                            JsonValue::Obj(vec![
                                ("config".into(), JsonValue::Str(p.abbrev().into())),
                                ("lens".into(), r.to_json_value()),
                            ])
                        })
                        .collect(),
                );
                println!("{doc}");
                return ExitCode::SUCCESS;
            }
            if let Some(path) = match flag_value(&args, "--out") {
                Ok(v) => v.map(str::to_string),
                Err(e) => return fail(format!("{e} (an output file)")),
            } {
                if rows.len() != 1 {
                    return fail("lens --out needs a single run: add --config".into());
                }
                let r = &rows[0].2;
                let text = if path.ends_with(".perfetto.json") {
                    let tracks: Vec<CounterTrack> = r
                        .counter_series()
                        .into_iter()
                        .map(|(name, points)| CounterTrack { name, points })
                        .collect();
                    chrome_json_with_counters(&[], 0, &tracks)
                } else if path.ends_with(".json") {
                    r.to_json()
                } else if path.ends_with(".csv") {
                    r.lines_csv()
                } else {
                    return fail(format!(
                        "unsupported --out file {path:?}: expected .csv, .json, or .perfetto.json"
                    ));
                };
                if let Err(e) = std::fs::write(&path, text) {
                    return fail(format!("writing {path}: {e}"));
                }
                eprintln!(
                    "wrote {path} ({} lines kept, {} acquire events)",
                    r.lines.len(),
                    r.events.len()
                );
            }
            println!(
                "lens of {name} at {s:?} scale (tracking the {} hottest lines)\n",
                spec.topk
            );
            if single {
                let (p, stats, r) = &rows[0];
                println!("== {p} ({} cycles) ==", stats.cycles);
                print!("{}", r.render_ledger());
                println!();
                print!("{}", r.render_lines(topn));
                println!();
                print!("{}", r.render_reuse());
                println!(
                    "\n{} acquire events recorded ({} dropped);\n\
                     export with --out FILE.csv|FILE.json|FILE.perfetto.json",
                    r.events.len(),
                    r.dropped_events
                );
            } else {
                print_lens_compare(&rows);
                println!(
                    "\n(dropped: still-valid words the acquire sweeps invalidated;\n\
                     refetched: the share provably re-fetched from L2 before any\n\
                     overwrite — pure waste the protocol's invalidation caused;\n\
                     x-sync-hit: L1 load hits that crossed an acquire boundary,\n\
                     i.e. reuse the protocol retained through synchronization.)"
                );
            }
            ExitCode::SUCCESS
        }
        "compare" => {
            let Some(name) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            if let Err(e) = lookup_bench(name) {
                return fail(e);
            }
            let shards = match parse_shards(&args) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let fabric = match parse_fabric(&args) {
                Ok(f) => f,
                Err(e) => return fail(e),
            };
            header();
            for p in ProtocolConfig::ALL {
                match run_one(name, p, scale(&args), shards, fabric) {
                    Ok(stats) => print_row(p, &stats),
                    Err(e) => return fail(e),
                }
            }
            ExitCode::SUCCESS
        }
        "sweep" => {
            let group = match parse_group(&args) {
                Ok(g) => g,
                Err(e) => return fail(e),
            };
            let cells = harness::group_matrix(group, scale(&args));
            let results = match run_matrix(&cells, &args) {
                Ok(r) => r,
                Err(e) => return fail(e),
            };
            for chunk in results.chunks(ProtocolConfig::ALL.len()) {
                println!("\n== {} ==", chunk[0].cell.bench);
                header();
                for r in chunk {
                    print_row(r.cell.config, &r.stats);
                }
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let mut failures: Vec<String> = Vec::new();
            let full = |p: ProtocolConfig| {
                let mut cfg = SystemConfig::micro15(p);
                cfg.check = CheckLevel::Full;
                cfg
            };
            println!(
                "conformance battery: {} litmus shapes x {} configs under CheckLevel::Full",
                litmus::battery().len(),
                ProtocolConfig::ALL.len()
            );
            for shape in litmus::battery() {
                let mut bad = 0;
                for p in ProtocolConfig::ALL {
                    if let Err(e) = Simulator::new(full(p)).run(&(shape.build)()) {
                        bad += 1;
                        failures.push(format!("{} under {p}: {e}", shape.name));
                    }
                }
                match bad {
                    0 => println!("  {:<16} clean under every config", shape.name),
                    n => println!("  {:<16} FAILED under {n} config(s)", shape.name),
                }
            }
            // The negative control: the detector must flag the race.
            let mut bad = 0;
            for p in ProtocolConfig::ALL {
                match Simulator::new(full(p)).run(&litmus::racy_negative()) {
                    Err(SimError::Check { .. }) => {}
                    Ok(_) => {
                        bad += 1;
                        failures.push(format!("racy-negative under {p}: race not detected"));
                    }
                    Err(e) => {
                        bad += 1;
                        failures.push(format!("racy-negative under {p}: wrong failure: {e}"));
                    }
                }
            }
            match bad {
                0 => println!(
                    "  {:<16} flagged as racy under every config",
                    "racy-negative"
                ),
                n => println!("  {:<16} MISSED under {n} config(s)", "racy-negative"),
            }
            // Optionally a Table 4 benchmark under the same microscope.
            if let Some(name) = match flag_value(&args, "--bench") {
                Ok(v) => v.map(str::to_string),
                Err(e) => return fail(format!("{e} (a Table 4 name)")),
            } {
                let b = match lookup_bench(&name) {
                    Ok(b) => b,
                    Err(e) => return fail(e),
                };
                let s = scale(&args);
                println!("benchmark {name} at {s:?} scale under CheckLevel::Full:");
                for p in ProtocolConfig::ALL {
                    match Simulator::new(full(p)).run(&(b.build)(s)) {
                        Ok(stats) => {
                            println!("  {:<8} clean ({} cycles)", p.to_string(), stats.cycles)
                        }
                        Err(e) => failures.push(format!("{name} under {p}: {e}")),
                    }
                }
            }
            if failures.is_empty() {
                println!("conformance check passed.");
                ExitCode::SUCCESS
            } else {
                for f in &failures {
                    eprintln!("FAIL {f}");
                }
                fail(format!("{} conformance failure(s)", failures.len()))
            }
        }
        "explore" => {
            // All battery shapes plus the exploration racy negative;
            // --shape narrows to one.
            let shapes: Vec<litmus::Litmus> = {
                let mut v: Vec<litmus::Litmus> = litmus::battery().to_vec();
                v.push(litmus::racy_explore());
                v
            };
            let shapes: Vec<litmus::Litmus> = match flag_value(&args, "--shape") {
                Ok(Some(name)) => match shapes.iter().find(|l| l.name == name) {
                    Some(l) => vec![*l],
                    None => {
                        let names: Vec<&str> = shapes.iter().map(|l| l.name).collect();
                        return fail(format!(
                            "unknown shape {name:?}: valid shapes are {}",
                            names.join(", ")
                        ));
                    }
                },
                Ok(None) => shapes,
                Err(e) => return fail(format!("{e} (a litmus shape name)")),
            };
            let configs: Vec<ProtocolConfig> = if args.iter().any(|a| a == "--config") {
                match parse_config(&args) {
                    Ok(c) => vec![c],
                    Err(e) => return fail(e),
                }
            } else {
                ProtocolConfig::ALL.to_vec()
            };
            // --replay short-circuits: one schedule, one shape, one config.
            match flag_value(&args, "--replay") {
                Ok(Some(id)) => {
                    let id = match ScheduleId::parse(id) {
                        Ok(id) => id,
                        Err(e) => return fail(format!("bad --replay id: {e}")),
                    };
                    if shapes.len() != 1 || configs.len() != 1 {
                        return fail("explore --replay needs --shape and --config".into());
                    }
                    let (shape, p) = (&shapes[0], configs[0]);
                    return match explore::replay(shape, p, &id) {
                        Ok(run) => {
                            let tuple: Vec<u32> = run.observed.clone();
                            if args.iter().any(|a| a == "--json") {
                                println!(
                                    "{{\"shape\":\"{}\",\"config\":\"{p}\",\"schedule\":\"{id}\",\
                                     \"outcome\":{:?},\"decisions\":{},\"stats\":{}}}",
                                    shape.name,
                                    tuple,
                                    run.decisions.len(),
                                    run.stats.to_json()
                                );
                            } else {
                                println!(
                                    "{} under {p}, schedule {id}: outcome {} after {} decisions, {} cycles",
                                    shape.name,
                                    litmus::OutcomeSpec::fmt_tuple(&tuple),
                                    run.decisions.len(),
                                    run.stats.cycles
                                );
                            }
                            ExitCode::SUCCESS
                        }
                        Err(e) => fail(format!("{} under {p}, schedule {id}: {e}", shape.name)),
                    };
                }
                Ok(None) => {}
                Err(e) => return fail(format!("{e} (a schedule id)")),
            }
            let budget = match flag_value(&args, "--budget") {
                Ok(Some(v)) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => Budget::schedules(n),
                    _ => {
                        return fail(format!(
                            "invalid --budget value {v:?}: expected a positive schedule count"
                        ))
                    }
                },
                Ok(None) => Budget::default(),
                Err(e) => return fail(format!("{e} (a schedule count)")),
            };
            let mode = if args.iter().any(|a| a == "--naive") {
                ExploreMode::Naive
            } else {
                ExploreMode::Dpor
            };
            let json = args.iter().any(|a| a == "--json");
            if !json {
                println!(
                    "schedule exploration ({mode} mode, budget {} schedules per cell)\n",
                    budget.max_schedules
                );
                println!(
                    "{:<14} {:<8} {:>9} {:>9} {:>5} {:<6} outcomes (schedules each; ! = forbidden, ? = undeclared)",
                    "shape", "config", "explored", "pruned", "dec", "set"
                );
            }
            let mut docs: Vec<String> = Vec::new();
            let mut bad = 0u32;
            for shape in &shapes {
                for &p in &configs {
                    let r = explore::explore(shape, p, mode, budget);
                    if json {
                        docs.push(r.to_json());
                        continue;
                    }
                    let set = if r.conforms(&shape.spec) {
                        "exact"
                    } else {
                        bad += 1;
                        "DIFFS"
                    };
                    let trunc = if r.truncated {
                        format!(" (truncated, {} schedules left)", r.frontier_left)
                    } else {
                        String::new()
                    };
                    println!(
                        "{:<14} {:<8} {:>9} {:>9} {:>5} {:<6} {}{}",
                        shape.name,
                        p.to_string(),
                        r.explored,
                        r.pruned(),
                        r.max_decisions,
                        set,
                        r.outcome_cell(),
                        trunc
                    );
                    for v in &r.violations {
                        println!("    schedule {}: {}", v.id, v.error);
                    }
                }
            }
            if json {
                println!("[{}]", docs.join(","));
                return ExitCode::SUCCESS;
            }
            println!(
                "\n(set column: `exact` = observed outcome set matches the shape's declared\n\
                 allowed set for that config; replay any witness with\n\
                 `gpu-denovo explore --shape S --config C --replay ID`.)"
            );
            if bad > 0 {
                return fail(format!(
                    "{bad} shape/config cell(s) diverge from their declared outcome sets"
                ));
            }
            ExitCode::SUCCESS
        }
        "matrix" => {
            let cells = harness::full_matrix(scale(&args));
            match run_matrix(&cells, &args) {
                Ok(results) => {
                    // Without --out, the grid itself goes to stdout.
                    if parse_out(&args).ok().flatten().is_none() {
                        print!("{}", harness::to_csv(&results));
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        _ => usage(),
    }
}
