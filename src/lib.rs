#![warn(missing_docs)]

//! **gpu-denovo** — a full reproduction of Sinclair, Alsop & Adve,
//! *"Efficient GPU Synchronization without Scopes: Saying No to Complex
//! Consistency Models"* (MICRO 2015), as a deterministic, functional +
//! timing simulator of a tightly coupled CPU-GPU system.
//!
//! The paper's question: can GPUs support fine-grained synchronization
//! efficiently *without* the scoped-synchronization HRF memory model?
//! Its answer — reproduced by this crate — is yes: the DeNovo hybrid
//! coherence protocol under plain DRF is a sweet spot in performance,
//! energy, hardware overhead, and memory-model complexity.
//!
//! # Quickstart
//!
//! Run a Table 4 benchmark under two of the paper's configurations and
//! compare:
//!
//! ```
//! use gpu_denovo::{registry, ProtocolConfig, Scale, Simulator, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = registry::by_name("SPM_G").expect("a Table 4 name");
//! let gd = Simulator::new(SystemConfig::micro15(ProtocolConfig::Gd))
//!     .run(&(bench.build)(Scale::Tiny))?;
//! let dd = Simulator::new(SystemConfig::micro15(ProtocolConfig::Dd))
//!     .run(&(bench.build)(Scale::Tiny))?;
//! // The paper's Figure 3: DeNovo wins on global-scope synchronization.
//! assert!(dd.cycles < gd.cycles);
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! | Layer | Crate | What it models |
//! |---|---|---|
//! | shared vocabulary | [`types`] | addressing, scopes, messages, statistics |
//! | interconnect | [`noc`] | 4x4 mesh, XY routing, flit-crossing accounting |
//! | memory structures | [`mem`] | word-state caches, MSHRs, store buffers, DRAM |
//! | coherence protocols | [`protocol`] | GPU (GD/GH) and DeNovo (DD/DD+RO/DH) controllers |
//! | simulation core | [`sim`] | kernel IR, CU model, DRF/HRF enforcement, engine |
//! | energy | [`energy`] | GPUWattch/McPAT-style per-event model |
//! | workloads | [`workloads`] | all 23 Table 4 benchmarks, functionally verified |
//! | tracing | [`trace`] | structured events, ring recorder, Chrome/Perfetto export |
//! | profiling | [`prof`] | cycle attribution, hot-line sketches, interval time-series |
//! | flow observation | [`flow`] | per-link traffic attribution, occupancy series, request journeys |
//! | lifecycle lens | [`lens`] | acquire invalidation-waste ledger, per-line lifecycle, cross-sync reuse |
//! | conformance | [`check`] | coherence invariants, happens-before race detection, quiesce audits |
//! | schedule exploration | [`explore`] | DPOR enumeration of same-cycle orderings, replayable schedules |
//! | experiment harness | [`harness`] | parallel matrix runner, content-addressed result cache |
//!
//! Every table and figure of the paper regenerates from the benches in
//! `crates/bench` (see EXPERIMENTS.md for the index and the measured
//! results).

pub use gsim_check as check;
pub use gsim_core as sim;
pub use gsim_energy as energy;
pub use gsim_explore as explore;
pub use gsim_flow as flow;
pub use gsim_harness as harness;
pub use gsim_lens as lens;
pub use gsim_mem as mem;
pub use gsim_noc as noc;
pub use gsim_prof as prof;
pub use gsim_protocol as protocol;
pub use gsim_trace as trace;
pub use gsim_types as types;
pub use gsim_workloads as workloads;

pub use gsim_check::CheckLevel;
pub use gsim_core::{
    EngineKind, KernelLaunch, MeshConfig, SimError, Simulator, SystemConfig, TbSpec, Topology,
    Workload, XLinkConfig,
};
pub use gsim_explore::{Budget, ExploreMode, ScheduleId, ShapeReport};
pub use gsim_flow::{FlowReport, FlowSpec};
pub use gsim_lens::{LensReport, LensSpec};
pub use gsim_prof::{ProfSpec, ProfileReport, StallKind};
pub use gsim_types::{ProtocolConfig, SimStats};
pub use gsim_workloads::{registry, Scale};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_compose() {
        let cfg = SystemConfig::micro15(ProtocolConfig::DdRo);
        assert!(cfg.protocol.read_only_region());
        assert_eq!(registry::all().len(), 23);
    }
}
